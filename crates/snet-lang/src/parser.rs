//! Recursive-descent parser for the S-Net surface syntax.
//!
//! Grammar (combinator precedence: replication postfixes bind tightest,
//! then parallel composition, then serial composition — the paper
//! parenthesises every figure, so precedence only matters for
//! convenience):
//!
//! ```text
//! program  := (boxdecl | netdecl)*
//! boxdecl  := 'box' IDENT variant '->' variant ('|' variant)* ';'
//! variant  := '(' labels ')' | '{' labels '}'
//! netdecl  := 'net' IDENT '=' netexpr ';'
//! netexpr  := par ('..' par)*
//! par      := postfix (('||'|'|') postfix)*
//! postfix  := atom ('**' exit | '*' exit | '!!' TAG | '!' TAG)*
//! exit     := '{' labels '}' ('if' guard)?
//! atom     := IDENT | filter | '(' netexpr ')'
//! filter   := '[' '{' labels '}' '->' recspec (';' recspec)* ']'
//! recspec  := '{' (item (',' item)*)? '}'
//! item     := IDENT ('=' IDENT)? | TAG ('=' texpr)?
//! guard    := gand ('||' gand)*
//! gand     := gnot ('&&' gnot)*
//! gnot     := '!' '(' guard ')' | texpr cmp texpr
//! texpr    := tterm (('+'|'-') tterm)*
//! tterm    := tfactor (('*'|'/'|'%') tfactor)*
//! tfactor  := INT | TAG | '-' tfactor | '(' texpr ')'
//! ```
//!
//! Deviation from the paper (documented in DESIGN.md): exit guards are
//! written `{<level>} if <level> > 40` rather than the paper's
//! `{<level>} | <level> > 40`, keeping `|` unambiguous with the
//! deterministic parallel combinator.

use crate::ast::{BoxDecl, ExitPattern, NetAst, NetDecl, Program};
use crate::expr::{ArithOp, CmpOp, Guard, TagExpr};
use crate::filter::{FilterDef, RecSpec, SpecItem};
use crate::token::{lex, Spanned, Tok};
use snet_types::{BoxSig, Label, RecordType};
use std::fmt;

/// A parse error with the line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn accept(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> PResult<()> {
        if self.accept(tok) {
            Ok(())
        } else {
            let found = self
                .peek()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "end of input".into());
            self.err(format!("expected '{tok}', found '{found}'"))
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => {
                let found = other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into());
                self.err(format!("expected identifier, found '{found}'"))
            }
        }
    }

    // --- labels, patterns -------------------------------------------------

    /// One label: `ident` (field) or `<ident>` (tag).
    fn label(&mut self) -> PResult<Label> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(Label::field(&s))
            }
            Some(Tok::TagRef(s)) => {
                self.pos += 1;
                Ok(Label::tag(&s))
            }
            other => {
                let found = other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into());
                self.err(format!("expected label, found '{found}'"))
            }
        }
    }

    /// Comma-separated labels until the closing token (not consumed).
    fn labels_until(&mut self, close: &Tok) -> PResult<Vec<Label>> {
        let mut out = Vec::new();
        if self.peek() == Some(close) {
            return Ok(out);
        }
        loop {
            out.push(self.label()?);
            if !self.accept(&Tok::Comma) {
                break;
            }
        }
        Ok(out)
    }

    /// `{ labels }` as a record type.
    fn brace_pattern(&mut self) -> PResult<RecordType> {
        self.expect(&Tok::LBrace)?;
        let labels = self.labels_until(&Tok::RBrace)?;
        self.expect(&Tok::RBrace)?;
        Ok(RecordType::new(labels))
    }

    /// A box signature variant: `( labels )` or `{ labels }`, keeping
    /// declaration order.
    fn sig_variant(&mut self) -> PResult<Vec<Label>> {
        if self.accept(&Tok::LParen) {
            let labels = self.labels_until(&Tok::RParen)?;
            self.expect(&Tok::RParen)?;
            Ok(labels)
        } else {
            self.expect(&Tok::LBrace)?;
            let labels = self.labels_until(&Tok::RBrace)?;
            self.expect(&Tok::RBrace)?;
            Ok(labels)
        }
    }

    // --- declarations -----------------------------------------------------

    fn box_decl(&mut self) -> PResult<BoxDecl> {
        self.expect(&Tok::KwBox)?;
        let name = self.ident()?;
        let params = self.sig_variant()?;
        self.expect(&Tok::Arrow)?;
        let mut outputs = vec![self.sig_variant()?];
        while self.accept(&Tok::Bar) {
            outputs.push(self.sig_variant()?);
        }
        self.expect(&Tok::Semi)?;
        Ok(BoxDecl {
            name,
            sig: BoxSig::new(params, outputs),
        })
    }

    fn net_decl(&mut self) -> PResult<NetDecl> {
        self.expect(&Tok::KwNet)?;
        let name = self.ident()?;
        self.expect(&Tok::Assign)?;
        let body = self.net_expr()?;
        self.expect(&Tok::Semi)?;
        Ok(NetDecl { name, body })
    }

    // --- network expressions ----------------------------------------------

    fn net_expr(&mut self) -> PResult<NetAst> {
        let mut lhs = self.par_expr()?;
        while self.accept(&Tok::DotDot) {
            let rhs = self.par_expr()?;
            lhs = NetAst::serial(lhs, rhs);
        }
        Ok(lhs)
    }

    fn par_expr(&mut self) -> PResult<NetAst> {
        let mut lhs = self.postfix_expr()?;
        loop {
            if self.accept(&Tok::ParBar) {
                let rhs = self.postfix_expr()?;
                lhs = NetAst::parallel(lhs, rhs);
            } else if self.accept(&Tok::Bar) {
                let rhs = self.postfix_expr()?;
                lhs = NetAst::parallel_det(lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn postfix_expr(&mut self) -> PResult<NetAst> {
        let mut inner = self.atom()?;
        loop {
            if self.accept(&Tok::StarStar) {
                let exit = self.exit_pattern()?;
                inner = NetAst::star(inner, exit);
            } else if self.accept(&Tok::Star) {
                let exit = self.exit_pattern()?;
                inner = NetAst::star_det(inner, exit);
            } else if self.accept(&Tok::BangBang) {
                let tag = self.tag_ref()?;
                inner = NetAst::split(inner, &tag);
            } else if self.accept(&Tok::Bang) {
                let tag = self.tag_ref()?;
                inner = NetAst::split_det(inner, &tag);
            } else {
                return Ok(inner);
            }
        }
    }

    fn tag_ref(&mut self) -> PResult<String> {
        match self.peek().cloned() {
            Some(Tok::TagRef(s)) => {
                self.pos += 1;
                Ok(s)
            }
            other => {
                let found = other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into());
                self.err(format!("expected '<tag>', found '{found}'"))
            }
        }
    }

    fn exit_pattern(&mut self) -> PResult<ExitPattern> {
        let pattern = self.brace_pattern()?;
        if self.accept(&Tok::KwIf) {
            let guard = self.guard()?;
            Ok(ExitPattern::with_guard(pattern, guard))
        } else {
            Ok(ExitPattern::new(pattern))
        }
    }

    fn atom(&mut self) -> PResult<NetAst> {
        match self.peek().cloned() {
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                Ok(NetAst::Ref(name))
            }
            Some(Tok::LBracket) => {
                let f = self.filter()?;
                Ok(NetAst::Filter(f))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.net_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => {
                let found = other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into());
                self.err(format!(
                    "expected box name, filter or parenthesised network, found '{found}'"
                ))
            }
        }
    }

    // --- filters ------------------------------------------------------

    fn filter(&mut self) -> PResult<FilterDef> {
        self.expect(&Tok::LBracket)?;
        let pattern = self.brace_pattern()?;
        self.expect(&Tok::Arrow)?;
        let mut outputs = vec![self.rec_spec()?];
        while self.accept(&Tok::Semi) {
            outputs.push(self.rec_spec()?);
        }
        self.expect(&Tok::RBracket)?;
        let line = self.line();
        FilterDef::new(pattern, outputs).map_err(|e| ParseError {
            message: e.to_string(),
            line,
        })
    }

    fn rec_spec(&mut self) -> PResult<RecSpec> {
        self.expect(&Tok::LBrace)?;
        let mut items = Vec::new();
        if self.peek() != Some(&Tok::RBrace) {
            loop {
                items.push(self.spec_item()?);
                if !self.accept(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(RecSpec { items })
    }

    fn spec_item(&mut self) -> PResult<SpecItem> {
        match self.peek().cloned() {
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                if self.accept(&Tok::Assign) {
                    let old = self.ident()?;
                    Ok(SpecItem::RenameField { new: name, old })
                } else {
                    Ok(SpecItem::CopyField(name))
                }
            }
            Some(Tok::TagRef(name)) => {
                self.pos += 1;
                if self.accept(&Tok::Assign) {
                    let e = self.tag_expr()?;
                    Ok(SpecItem::Tag {
                        name,
                        init: Some(e),
                    })
                } else {
                    Ok(SpecItem::Tag { name, init: None })
                }
            }
            other => {
                let found = other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into());
                self.err(format!("expected record specifier item, found '{found}'"))
            }
        }
    }

    // --- tag expressions and guards -------------------------------------

    fn tag_expr(&mut self) -> PResult<TagExpr> {
        let mut lhs = self.tag_term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.tag_term()?;
            lhs = TagExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn tag_term(&mut self) -> PResult<TagExpr> {
        let mut lhs = self.tag_factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => ArithOp::Mul,
                Some(Tok::Slash) => ArithOp::Div,
                Some(Tok::Percent) => ArithOp::Mod,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.tag_factor()?;
            lhs = TagExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn tag_factor(&mut self) -> PResult<TagExpr> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(TagExpr::Lit(v))
            }
            Some(Tok::TagRef(t)) => {
                self.pos += 1;
                Ok(TagExpr::Tag(t))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                let e = self.tag_factor()?;
                Ok(TagExpr::Neg(Box::new(e)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.tag_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => {
                let found = other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into());
                self.err(format!("expected tag expression, found '{found}'"))
            }
        }
    }

    fn guard(&mut self) -> PResult<Guard> {
        let mut lhs = self.guard_and()?;
        while self.accept(&Tok::ParBar) {
            let rhs = self.guard_and()?;
            lhs = Guard::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn guard_and(&mut self) -> PResult<Guard> {
        let mut lhs = self.guard_not()?;
        while self.accept(&Tok::AndAnd) {
            let rhs = self.guard_not()?;
            lhs = Guard::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn guard_not(&mut self) -> PResult<Guard> {
        if self.accept(&Tok::Bang) {
            self.expect(&Tok::LParen)?;
            let g = self.guard()?;
            self.expect(&Tok::RParen)?;
            return Ok(Guard::Not(Box::new(g)));
        }
        // A '(' may open a parenthesised guard group or a parenthesised
        // tag expression; try the guard reading first and backtrack.
        if self.peek() == Some(&Tok::LParen) {
            let save = self.pos;
            self.pos += 1;
            if let Ok(g) = self.guard() {
                if self.accept(&Tok::RParen) {
                    return Ok(g);
                }
            }
            self.pos = save;
        }
        let lhs = self.tag_expr()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => CmpOp::Eq,
            Some(Tok::NotEq) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            other => {
                let found = other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into());
                return self.err(format!("expected comparison operator, found '{found}'"));
            }
        };
        self.pos += 1;
        let rhs = self.tag_expr()?;
        Ok(Guard::Cmp(op, lhs, rhs))
    }

    // --- program ----------------------------------------------------------

    fn program(&mut self) -> PResult<Program> {
        let mut p = Program::default();
        while let Some(t) = self.peek() {
            match t {
                Tok::KwBox => p.boxes.push(self.box_decl()?),
                Tok::KwNet => p.nets.push(self.net_decl()?),
                other => {
                    let other = other.to_string();
                    return self.err(format!(
                        "expected 'box' or 'net' declaration, found '{other}'"
                    ));
                }
            }
        }
        Ok(p)
    }
}

fn make_parser(src: &str) -> PResult<Parser> {
    let toks = lex(src).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
    })?;
    Ok(Parser { toks, pos: 0 })
}

/// Parses a complete program (box and net declarations).
pub fn parse_program(src: &str) -> PResult<Program> {
    let mut p = make_parser(src)?;
    p.program()
}

/// Parses a single network expression, e.g.
/// `computeOpts .. (solveOneLevel !! <k>) ** {<done>}`.
pub fn parse_net_expr(src: &str) -> PResult<NetAst> {
    let mut p = make_parser(src)?;
    let e = p.net_expr()?;
    if p.peek().is_some() {
        return p.err("trailing input after network expression");
    }
    Ok(e)
}

/// Parses a single filter, e.g. `[{<k>} -> {<k>=<k>%4}]`.
pub fn parse_filter(src: &str) -> PResult<FilterDef> {
    let mut p = make_parser(src)?;
    let f = p.filter()?;
    if p.peek().is_some() {
        return p.err("trailing input after filter");
    }
    Ok(f)
}

/// Parses a guard expression, e.g. `<level> > 40`.
pub fn parse_guard(src: &str) -> PResult<Guard> {
    let mut p = make_parser(src)?;
    let g = p.guard()?;
    if p.peek().is_some() {
        return p.err("trailing input after guard");
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_box_decl() {
        // box foo (a,<b>) -> (c) | (c,d,<e>)
        let p = parse_program("box foo (a,<b>) -> (c) | (c,d,<e>);").unwrap();
        assert_eq!(p.boxes.len(), 1);
        let b = &p.boxes[0];
        assert_eq!(b.name, "foo");
        assert_eq!(b.sig.params.len(), 2);
        assert_eq!(b.sig.outputs.len(), 2);
        assert_eq!(b.sig.output_type().to_string(), "{c} | {c,d,<e>}");
    }

    #[test]
    fn parse_brace_style_box_decl() {
        let p =
            parse_program("box solveOneLevel {board, opts} -> {board, opts} | {board, <done>};")
                .unwrap();
        assert_eq!(p.boxes[0].sig.params.len(), 2);
    }

    #[test]
    fn parse_serial_and_parallel_precedence() {
        // a .. b || c .. d ≡ a .. (b || c) .. d
        let e = parse_net_expr("a .. b || c .. d").unwrap();
        match e {
            NetAst::Serial(lhs, d) => {
                assert_eq!(*d, NetAst::boxref("d"));
                match *lhs {
                    NetAst::Serial(a, par) => {
                        assert_eq!(*a, NetAst::boxref("a"));
                        assert!(matches!(*par, NetAst::Parallel { det: false, .. }));
                    }
                    other => panic!("unexpected: {other:?}"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_det_combinators() {
        let e = parse_net_expr("a | b").unwrap();
        assert!(matches!(e, NetAst::Parallel { det: true, .. }));
        let e = parse_net_expr("a * {<done>}").unwrap();
        assert!(matches!(e, NetAst::Star { det: true, .. }));
        let e = parse_net_expr("a ! <k>").unwrap();
        assert!(matches!(e, NetAst::Split { det: true, .. }));
    }

    #[test]
    fn parse_fig1_network() {
        // computeOpts .. solveOneLevel ** {<done>}
        let e = parse_net_expr("computeOpts .. solveOneLevel ** {<done>}").unwrap();
        match e {
            NetAst::Serial(a, star) => {
                assert_eq!(*a, NetAst::boxref("computeOpts"));
                match *star {
                    NetAst::Star { inner, exit, det } => {
                        assert!(!det);
                        assert_eq!(*inner, NetAst::boxref("solveOneLevel"));
                        assert_eq!(exit.pattern, RecordType::of(&[], &["done"]));
                        assert!(exit.guard.is_none());
                    }
                    other => panic!("unexpected: {other:?}"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_fig2_network() {
        let e =
            parse_net_expr("computeOpts .. [{} -> {<k>=1}] .. (solveOneLevel !! <k>) ** {<done>}")
                .unwrap();
        // Shape: serial(serial(computeOpts, filter), star(split(...)))
        match e {
            NetAst::Serial(lhs, star) => {
                assert!(matches!(*star, NetAst::Star { .. }));
                match *lhs {
                    NetAst::Serial(_, f) => assert!(matches!(*f, NetAst::Filter(_))),
                    other => panic!("unexpected: {other:?}"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_fig3_network_with_guard() {
        let e = parse_net_expr(
            "computeOpts .. [{} -> {<k>=1}] .. \
             ([{<k>} -> {<k>=<k>%4}] .. (solveOneLevel !! <k>)) ** {<level>} if <level> > 40 \
             .. solve",
        )
        .unwrap();
        let mut found_guard = false;
        fn walk(e: &NetAst, found: &mut bool) {
            match e {
                NetAst::Star { exit, inner, .. } => {
                    if exit.guard.is_some() {
                        *found = true;
                    }
                    walk(inner, found);
                }
                NetAst::Serial(a, b) => {
                    walk(a, found);
                    walk(b, found);
                }
                NetAst::Parallel { left, right, .. } => {
                    walk(left, found);
                    walk(right, found);
                }
                NetAst::Split { inner, .. } => walk(inner, found),
                _ => {}
            }
        }
        walk(&e, &mut found_guard);
        assert!(found_guard, "expected a guarded exit pattern in {e:?}");
    }

    #[test]
    fn parse_paper_filter() {
        let f = parse_filter("[{a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=<c>+1}]").unwrap();
        assert_eq!(f.outputs.len(), 2);
        assert_eq!(f.pattern, RecordType::of(&["a", "b"], &["c"]));
        assert_eq!(
            f.outputs[1].items[2],
            SpecItem::Tag {
                name: "c".into(),
                init: Some(TagExpr::Bin(
                    ArithOp::Add,
                    Box::new(TagExpr::Tag("c".into())),
                    Box::new(TagExpr::Lit(1)),
                )),
            }
        );
    }

    #[test]
    fn parse_throttle_filter() {
        let f = parse_filter("[{<k>} -> {<k>=<k>%4}]").unwrap();
        assert_eq!(f.pattern, RecordType::of(&[], &["k"]));
        match &f.outputs[0].items[0] {
            SpecItem::Tag {
                name,
                init: Some(TagExpr::Bin(ArithOp::Mod, _, _)),
            } => assert_eq!(name, "k"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_guard_connectives_and_precedence() {
        let g = parse_guard("<a> > 1 && <b> < 2 || <c> == 3").unwrap();
        // && binds tighter than ||.
        assert!(matches!(g, Guard::Or(_, _)));
        let g = parse_guard("!(<a> != 0)").unwrap();
        assert!(matches!(g, Guard::Not(_)));
    }

    #[test]
    fn parse_tag_arithmetic_precedence() {
        let f = parse_filter("[{<a>,<b>} -> {<x>=<a>+<b>*2}]").unwrap();
        match &f.outputs[0].items[0] {
            SpecItem::Tag {
                init: Some(TagExpr::Bin(ArithOp::Add, _, rhs)),
                ..
            } => assert!(matches!(**rhs, TagExpr::Bin(ArithOp::Mul, _, _))),
            other => panic!("unexpected: {other:?}"),
        }
        // Parenthesised override.
        let f = parse_filter("[{<a>,<b>} -> {<x>=(<a>+<b>)*2}]").unwrap();
        match &f.outputs[0].items[0] {
            SpecItem::Tag {
                init: Some(TagExpr::Bin(ArithOp::Mul, lhs, _)),
                ..
            } => assert!(matches!(**lhs, TagExpr::Bin(ArithOp::Add, _, _))),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_program_with_nets() {
        let src = "
            box computeOpts {board} -> {board, opts};
            box solveOneLevel {board, opts} -> {board, opts} | {board, <done>};
            net fig1 = computeOpts .. solveOneLevel ** {<done>};
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.boxes.len(), 2);
        assert_eq!(p.nets.len(), 1);
        let env = p.env().unwrap();
        assert!(env.lookup_sig("fig1").is_some());
    }

    #[test]
    fn error_messages_carry_lines() {
        let e = parse_program("box foo (a) ->\n(b)\nnet oops").unwrap_err();
        assert!(e.line >= 2, "line was {}", e.line);
        let e = parse_net_expr("a .. ..").unwrap_err();
        assert!(e.message.contains("expected"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse_net_expr("a b").is_err());
        assert!(parse_filter("[{a} -> {a}] extra").is_err());
        assert!(parse_guard("<a> > 1 1").is_err());
    }

    #[test]
    fn rejects_invalid_filter_semantics_at_parse_time() {
        // Field copied but absent from the pattern — FilterDef::new
        // validation surfaces as a parse error.
        assert!(parse_filter("[{a} -> {b}]").is_err());
    }

    #[test]
    fn empty_pattern_and_empty_spec() {
        let f = parse_filter("[{} -> {<k>=1}]").unwrap();
        assert!(f.pattern.is_empty());
        let f = parse_filter("[{a} -> {}]").unwrap();
        assert!(f.outputs[0].items.is_empty());
    }
}
