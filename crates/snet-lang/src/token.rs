//! Lexer for the S-Net surface syntax.
//!
//! Tokenises network expressions such as
//!
//! ```text
//! box solveOneLevel ({board, opts} -> {board, opts, <k>} | {board, <done>});
//! net fig2 = computeOpts .. [{} -> {<k>=1}] .. (solveOneLevel !! <k>) ** {<done>};
//! ```
//!
//! The only lexical subtlety is `<`: it opens a tag reference
//! (`<done>`), appears in comparison operators (`<`, `<=`), and both
//! uses occur inside exit guards (`{<level>} if <level> > 40`). The
//! lexer resolves this with bounded lookahead: `<ident>` lexes as a
//! single [`Tok::TagRef`], anything else as the comparison operator.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    /// `<name>` — a tag reference.
    TagRef(String),
    // Punctuation and combinators.
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Arrow,    // ->
    DotDot,   // ..
    ParBar,   // ||
    Bar,      // |
    StarStar, // **
    Star,     // *
    BangBang, // !!
    Bang,     // !
    Assign,   // =
    // Arithmetic.
    Plus,
    Minus,
    Slash,
    Percent,
    // Comparison / logic (guards).
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    // Keywords.
    KwBox,
    KwNet,
    KwIf,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::TagRef(s) => write!(f, "<{s}>"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Arrow => write!(f, "->"),
            Tok::DotDot => write!(f, ".."),
            Tok::ParBar => write!(f, "||"),
            Tok::Bar => write!(f, "|"),
            Tok::StarStar => write!(f, "**"),
            Tok::Star => write!(f, "*"),
            Tok::BangBang => write!(f, "!!"),
            Tok::Bang => write!(f, "!"),
            Tok::Assign => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::AndAnd => write!(f, "&&"),
            Tok::KwBox => write!(f, "box"),
            Tok::KwNet => write!(f, "net"),
            Tok::KwIf => write!(f, "if"),
        }
    }
}

/// A token plus its source position (byte offset and 1-based line).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    pub tok: Tok,
    pub offset: usize,
    pub line: u32,
}

/// A lexical error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    pub message: String,
    pub offset: usize,
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            offset: self.pos,
            line: self.line,
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                // Line comments: // ... (not followed by a third use of
                // '/' mattering; '//' always starts a comment because
                // no S-Net operator contains two slashes).
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Attempts to lex `<ident>` starting at the current `<`; restores
    /// position and returns `None` if the shape doesn't match.
    fn try_tagref(&mut self) -> Option<String> {
        let save = (self.pos, self.line);
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.bump();
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {}
            _ => {
                (self.pos, self.line) = save;
                return None;
            }
        }
        let name = self.ident();
        if self.peek() == Some(b'>') {
            self.bump();
            Some(name)
        } else {
            (self.pos, self.line) = save;
            None
        }
    }

    fn next_token(&mut self) -> Result<Option<Spanned>, LexError> {
        self.skip_trivia()?;
        let offset = self.pos;
        let line = self.line;
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let tok = match c {
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b'+' => {
                self.bump();
                Tok::Plus
            }
            b'%' => {
                self.bump();
                Tok::Percent
            }
            b'/' => {
                self.bump();
                Tok::Slash
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    Tok::Arrow
                } else {
                    Tok::Minus
                }
            }
            b'.' => {
                self.bump();
                if self.peek() == Some(b'.') {
                    self.bump();
                    Tok::DotDot
                } else {
                    return Err(self.err("expected '..'"));
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    Tok::ParBar
                } else {
                    Tok::Bar
                }
            }
            b'*' => {
                self.bump();
                if self.peek() == Some(b'*') {
                    self.bump();
                    Tok::StarStar
                } else {
                    Tok::Star
                }
            }
            b'!' => {
                self.bump();
                match self.peek() {
                    Some(b'!') => {
                        self.bump();
                        Tok::BangBang
                    }
                    Some(b'=') => {
                        self.bump();
                        Tok::NotEq
                    }
                    _ => Tok::Bang,
                }
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::EqEq
                } else {
                    Tok::Assign
                }
            }
            b'<' => {
                if let Some(name) = self.try_tagref() {
                    Tok::TagRef(name)
                } else {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Le
                    } else {
                        Tok::Lt
                    }
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'&' => {
                self.bump();
                if self.peek() == Some(b'&') {
                    self.bump();
                    Tok::AndAnd
                } else {
                    return Err(self.err("expected '&&'"));
                }
            }
            c if c.is_ascii_digit() => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                let v: i64 = text
                    .parse()
                    .map_err(|_| self.err(format!("integer literal out of range: {text}")))?;
                Tok::Int(v)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.ident();
                match name.as_str() {
                    "box" => Tok::KwBox,
                    "net" => Tok::KwNet,
                    "if" => Tok::KwIf,
                    _ => Tok::Ident(name),
                }
            }
            other => {
                return Err(self.err(format!("unexpected character '{}'", other as char)));
            }
        };
        Ok(Some(Spanned { tok, offset, line }))
    }
}

/// Tokenises a complete source string.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(t) = lx.next_token()? {
        out.push(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn combinator_tokens() {
        assert_eq!(
            toks("a .. b || c | d ** e * f !! g ! h"),
            vec![
                Tok::Ident("a".into()),
                Tok::DotDot,
                Tok::Ident("b".into()),
                Tok::ParBar,
                Tok::Ident("c".into()),
                Tok::Bar,
                Tok::Ident("d".into()),
                Tok::StarStar,
                Tok::Ident("e".into()),
                Tok::Star,
                Tok::Ident("f".into()),
                Tok::BangBang,
                Tok::Ident("g".into()),
                Tok::Bang,
                Tok::Ident("h".into()),
            ]
        );
    }

    #[test]
    fn tagrefs_vs_comparisons() {
        assert_eq!(
            toks("<level> > 40"),
            vec![Tok::TagRef("level".into()), Tok::Gt, Tok::Int(40)]
        );
        assert_eq!(
            toks("<a> < <b>"),
            vec![Tok::TagRef("a".into()), Tok::Lt, Tok::TagRef("b".into()),]
        );
        assert_eq!(toks("1 <= 2"), vec![Tok::Int(1), Tok::Le, Tok::Int(2)]);
        // '<' followed by a digit is a comparison, not a tag.
        assert_eq!(
            toks("x <3"),
            vec![Tok::Ident("x".into()), Tok::Lt, Tok::Int(3)]
        );
    }

    #[test]
    fn paper_filter_lexes() {
        // [{a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=<c>+1}]
        let ts = toks("[{a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=<c>+1}]");
        assert!(ts.contains(&Tok::LBracket));
        assert!(ts.contains(&Tok::TagRef("c".into())));
        assert!(ts.contains(&Tok::Plus));
        assert!(ts.contains(&Tok::Semi));
        assert_eq!(*ts.last().unwrap(), Tok::RBracket);
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("box net if boxer nets iffy"),
            vec![
                Tok::KwBox,
                Tok::KwNet,
                Tok::KwIf,
                Tok::Ident("boxer".into()),
                Tok::Ident("nets".into()),
                Tok::Ident("iffy".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // comment .. ** !!\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn line_numbers_advance() {
        let ts = lex("a\nb\n  c").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn arithmetic_and_logic() {
        assert_eq!(
            toks("<k> % 4 == 0 && <j> != 1"),
            vec![
                Tok::TagRef("k".into()),
                Tok::Percent,
                Tok::Int(4),
                Tok::EqEq,
                Tok::Int(0),
                Tok::AndAnd,
                Tok::TagRef("j".into()),
                Tok::NotEq,
                Tok::Int(1),
            ]
        );
    }

    #[test]
    fn error_on_stray_character() {
        assert!(lex("a ^ b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a . b").is_err());
    }

    #[test]
    fn arrow_and_minus() {
        assert_eq!(
            toks("-> - -5"),
            vec![Tok::Arrow, Tok::Minus, Tok::Minus, Tok::Int(5)]
        );
    }
}
