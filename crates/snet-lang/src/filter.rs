//! Filters — S-Net's housekeeping construct.
//!
//! "`[pattern → record1; record2; . . . recordn]`: the type pattern on
//! the left is a set of labels while each of the record specifiers on
//! the right is a set of items" (paper, Section 4). A filter consumes
//! one record and emits one record per specifier, supporting renaming,
//! duplication, elimination of fields/tags and tag arithmetic — all on
//! the coordination level, without touching payloads.
//!
//! Filter application is pure (record in, records out), so it lives
//! here in the language crate; `snet-runtime` merely wraps it in a
//! stream component. Like boxes, filters flow-inherit: labels of the
//! input record that do not occur in the pattern are re-attached to
//! every output record unless already present — the paper relies on
//! this when inserting `[{} -> {<k>=1}]` in front of Figure 2's
//! parallel replicator.

use crate::expr::{ExprError, TagExpr};
use snet_types::{Label, Mapping, NetSig, OutVariant, Record, RecordType};
use std::fmt;

/// One item of a record specifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecItem {
    /// `a` — copy a field occurring in the pattern.
    CopyField(String),
    /// `new = old` — the old field's value under a new label; `old`
    /// must occur in the pattern.
    RenameField { new: String, old: String },
    /// `<t>` or `<t> = expr` — a tag, computed from the expression or
    /// defaulting to zero ("the initialisation of new tags is optional,
    /// tag values are set to zero by default").
    Tag { name: String, init: Option<TagExpr> },
}

/// A record specifier: the items of one output record.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RecSpec {
    pub items: Vec<SpecItem>,
}

/// A complete filter definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilterDef {
    /// The accepted pattern (a set of labels).
    pub pattern: RecordType,
    /// Output record specifiers, in order.
    pub outputs: Vec<RecSpec>,
}

/// A static validation error in a filter definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilterError(pub String);

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid filter: {}", self.0)
    }
}

impl std::error::Error for FilterError {}

impl FilterDef {
    pub fn new(pattern: RecordType, outputs: Vec<RecSpec>) -> Result<FilterDef, FilterError> {
        let f = FilterDef { pattern, outputs };
        f.validate()?;
        Ok(f)
    }

    /// The identity filter on a pattern: `[p -> p]`.
    pub fn identity(pattern: RecordType) -> FilterDef {
        let items = pattern
            .labels()
            .iter()
            .map(|l| {
                if l.is_field() {
                    SpecItem::CopyField(l.name().to_string())
                } else {
                    SpecItem::Tag {
                        name: l.name().to_string(),
                        init: Some(TagExpr::tag(l.name())),
                    }
                }
            })
            .collect();
        FilterDef {
            pattern,
            outputs: vec![RecSpec { items }],
        }
    }

    /// Static well-formedness per the paper's three item kinds:
    /// * copied fields must occur in the pattern;
    /// * renamed fields must take their value from a pattern field;
    /// * every tag referenced by an expression must occur in the pattern.
    pub fn validate(&self) -> Result<(), FilterError> {
        if self.outputs.is_empty() {
            return Err(FilterError(
                "a filter must emit at least one record specifier".into(),
            ));
        }
        for spec in &self.outputs {
            let mut produced: Vec<Label> = Vec::new();
            for item in &spec.items {
                let label = match item {
                    SpecItem::CopyField(name) => {
                        let l = Label::field(name);
                        if !self.pattern.contains(l) {
                            return Err(FilterError(format!(
                                "copied field '{name}' does not occur in pattern {}",
                                self.pattern
                            )));
                        }
                        l
                    }
                    SpecItem::RenameField { new, old } => {
                        if !self.pattern.contains(Label::field(old)) {
                            return Err(FilterError(format!(
                                "renamed field '{old}' does not occur in pattern {}",
                                self.pattern
                            )));
                        }
                        Label::field(new)
                    }
                    SpecItem::Tag { name, init } => {
                        if let Some(e) = init {
                            let mut refs = Vec::new();
                            e.referenced_tags(&mut refs);
                            for t in refs {
                                if !self.pattern.contains(Label::tag(&t)) {
                                    return Err(FilterError(format!(
                                        "tag <{t}> referenced by expression does not occur in \
                                         pattern {}",
                                        self.pattern
                                    )));
                                }
                            }
                        }
                        Label::tag(name)
                    }
                };
                if produced.contains(&label) {
                    return Err(FilterError(format!(
                        "record specifier produces label {label} twice"
                    )));
                }
                produced.push(label);
            }
        }
        Ok(())
    }

    /// The labels one specifier produces.
    pub fn spec_type(spec: &RecSpec) -> RecordType {
        spec.items
            .iter()
            .map(|i| match i {
                SpecItem::CopyField(n) => Label::field(n),
                SpecItem::RenameField { new, .. } => Label::field(new),
                SpecItem::Tag { name, .. } => Label::tag(name),
            })
            .collect()
    }

    /// The induced network signature: pattern in, one variant per
    /// specifier out, flow inheritance on.
    pub fn net_sig(&self) -> NetSig {
        NetSig {
            maps: vec![Mapping {
                input: self.pattern.clone(),
                outputs: self
                    .outputs
                    .iter()
                    .map(|s| OutVariant::new(Self::spec_type(s)))
                    .collect(),
            }],
        }
    }

    /// Applies the filter to a record, producing one output record per
    /// specifier (in order). The record must match the pattern. Labels
    /// of the input record not in the pattern flow-inherit onto every
    /// output.
    pub fn apply(&self, rec: &Record) -> Result<Vec<Record>, ExprError> {
        // Everything outside the pattern is excess — the compiled
        // split plan's excess half (one shape-keyed lookup plus array
        // copies; see snet_types::shape).
        let excess = rec.excess_for(&self.pattern).unwrap_or_else(|| {
            panic!(
                "filter applied to non-matching record {rec:?} (pattern {})",
                self.pattern
            )
        });
        self.apply_with_excess(rec, &excess)
    }

    /// [`FilterDef::apply`] with the flow-inheritance excess already
    /// computed — for callers (the runtime's filter component) that
    /// resolve the split plan once per record shape instead of once
    /// per record.
    pub fn apply_with_excess(
        &self,
        rec: &Record,
        excess: &Record,
    ) -> Result<Vec<Record>, ExprError> {
        let mut out = Vec::with_capacity(self.outputs.len());
        for spec in &self.outputs {
            let mut r = Record::new();
            for item in &spec.items {
                match item {
                    SpecItem::CopyField(name) => {
                        let v = rec
                            .field(name)
                            .expect("validated: pattern field present")
                            .clone();
                        r.set_field(name, v);
                    }
                    SpecItem::RenameField { new, old } => {
                        let v = rec
                            .field(old)
                            .expect("validated: pattern field present")
                            .clone();
                        r.set_field(new, v);
                    }
                    SpecItem::Tag { name, init } => {
                        let v = match init {
                            Some(e) => e.eval(rec)?,
                            None => 0,
                        };
                        r.set_tag(name, v);
                    }
                }
            }
            out.push(r.inherit(excess));
        }
        Ok(out)
    }
}

impl fmt::Display for FilterDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} -> ", self.pattern)?;
        for (i, spec) in self.outputs.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{{")?;
            for (j, item) in spec.items.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                match item {
                    SpecItem::CopyField(n) => write!(f, "{n}")?,
                    SpecItem::RenameField { new, old } => write!(f, "{new}={old}")?,
                    SpecItem::Tag { name, init } => match init {
                        Some(e) => write!(f, "<{name}>={e}")?,
                        None => write!(f, "<{name}>")?,
                    },
                }
            }
            write!(f, "}}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_types::Value;

    /// The paper's worked filter:
    /// `[{a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=<c>+1}]`.
    fn paper_filter() -> FilterDef {
        FilterDef::new(
            RecordType::of(&["a", "b"], &["c"]),
            vec![
                RecSpec {
                    items: vec![
                        SpecItem::CopyField("a".into()),
                        SpecItem::RenameField {
                            new: "z".into(),
                            old: "a".into(),
                        },
                        SpecItem::Tag {
                            name: "t".into(),
                            init: None,
                        },
                    ],
                },
                RecSpec {
                    items: vec![
                        SpecItem::CopyField("b".into()),
                        SpecItem::RenameField {
                            new: "a".into(),
                            old: "b".into(),
                        },
                        SpecItem::Tag {
                            name: "c".into(),
                            init: Some(TagExpr::tag("c").add(TagExpr::lit(1))),
                        },
                    ],
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_filter_semantics() {
        let input = Record::build()
            .field("a", 100i64)
            .field("b", 200i64)
            .tag("c", 7)
            .finish();
        let out = paper_filter().apply(&input).unwrap();
        assert_eq!(out.len(), 2);
        // First record: field a (original), z = a, <t> = 0.
        assert_eq!(out[0].field("a").unwrap().as_int(), Some(100));
        assert_eq!(out[0].field("z").unwrap().as_int(), Some(100));
        assert_eq!(out[0].tag("t"), Some(0));
        assert_eq!(out[0].field("b"), None);
        // Second record: field b (original), a = b, <c> incremented.
        assert_eq!(out[1].field("b").unwrap().as_int(), Some(200));
        assert_eq!(out[1].field("a").unwrap().as_int(), Some(200));
        assert_eq!(out[1].tag("c"), Some(8));
    }

    #[test]
    fn filter_flow_inherits_excess() {
        // The Figure 2 filter [{} -> {<k>=1}] applied to {board, opts}:
        // "the filter has the desired effect on records of the type
        // {board, opts} although its fields do not occur in the filter".
        let f = FilterDef::new(
            RecordType::empty(),
            vec![RecSpec {
                items: vec![SpecItem::Tag {
                    name: "k".into(),
                    init: Some(TagExpr::lit(1)),
                }],
            }],
        )
        .unwrap();
        let input = Record::build()
            .field("board", Value::Int(1))
            .field("opts", Value::Int(2))
            .finish();
        let out = f.apply(&input).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tag("k"), Some(1));
        assert!(out[0].field("board").is_some());
        assert!(out[0].field("opts").is_some());
    }

    #[test]
    fn inherited_label_does_not_override_produced() {
        // Throttle [{<k>} -> {<k>=<k>%4}]: the produced <k> wins over
        // the (consumed) pattern <k>; nothing else changes.
        let f = FilterDef::new(
            RecordType::of(&[], &["k"]),
            vec![RecSpec {
                items: vec![SpecItem::Tag {
                    name: "k".into(),
                    init: Some(TagExpr::tag("k").modulo(TagExpr::lit(4))),
                }],
            }],
        )
        .unwrap();
        let input = Record::build()
            .field("p", Value::Int(9))
            .tag("k", 7)
            .finish();
        let out = f.apply(&input).unwrap();
        assert_eq!(out[0].tag("k"), Some(3));
        assert!(out[0].field("p").is_some());
    }

    #[test]
    fn elimination_by_omission() {
        // [{a,b} -> {a}] drops b (it is in the pattern but not copied).
        let f = FilterDef::new(
            RecordType::of(&["a", "b"], &[]),
            vec![RecSpec {
                items: vec![SpecItem::CopyField("a".into())],
            }],
        )
        .unwrap();
        let input = Record::build().field("a", 1i64).field("b", 2i64).finish();
        let out = f.apply(&input).unwrap();
        assert!(out[0].field("b").is_none());
        assert!(out[0].field("a").is_some());
    }

    #[test]
    fn validation_rejects_unknown_sources() {
        // Copying a field not in the pattern.
        assert!(FilterDef::new(
            RecordType::of(&["a"], &[]),
            vec![RecSpec {
                items: vec![SpecItem::CopyField("zz".into())],
            }],
        )
        .is_err());
        // Renaming from a field not in the pattern.
        assert!(FilterDef::new(
            RecordType::of(&["a"], &[]),
            vec![RecSpec {
                items: vec![SpecItem::RenameField {
                    new: "x".into(),
                    old: "zz".into()
                }],
            }],
        )
        .is_err());
        // Tag expression over a tag not in the pattern.
        assert!(FilterDef::new(
            RecordType::of(&[], &["k"]),
            vec![RecSpec {
                items: vec![SpecItem::Tag {
                    name: "j".into(),
                    init: Some(TagExpr::tag("nope")),
                }],
            }],
        )
        .is_err());
    }

    #[test]
    fn validation_rejects_duplicate_production() {
        assert!(FilterDef::new(
            RecordType::of(&["a"], &[]),
            vec![RecSpec {
                items: vec![
                    SpecItem::CopyField("a".into()),
                    SpecItem::RenameField {
                        new: "a".into(),
                        old: "a".into()
                    }
                ],
            }],
        )
        .is_err());
    }

    #[test]
    fn validation_rejects_empty_output_list() {
        assert!(FilterDef::new(RecordType::empty(), vec![]).is_err());
    }

    #[test]
    fn net_sig_shape() {
        let sig = paper_filter().net_sig();
        assert_eq!(sig.maps.len(), 1);
        assert_eq!(sig.maps[0].input, RecordType::of(&["a", "b"], &["c"]));
        assert_eq!(sig.maps[0].outputs.len(), 2);
        assert_eq!(
            sig.maps[0].outputs[0].labels,
            RecordType::of(&["a", "z"], &["t"])
        );
        assert!(sig.maps[0].outputs.iter().all(|o| o.inherits));
    }

    #[test]
    fn identity_filter_keeps_record() {
        let ty = RecordType::of(&["x"], &["t"]);
        let f = FilterDef::identity(ty);
        let input = Record::build()
            .field("x", 5i64)
            .tag("t", 3)
            .field("extra", 9i64)
            .finish();
        let out = f.apply(&input).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], input);
    }

    #[test]
    fn missing_tag_in_expression_is_runtime_error() {
        // Pattern declares <k> but we bypass matching with debug off…
        // instead: expression over optional tag evaluated when pattern
        // matched but tag removed is impossible through the public API,
        // so test the ExprError path via a guard-less eval: a filter
        // whose expression divides by a zero tag.
        let f = FilterDef::new(
            RecordType::of(&[], &["k"]),
            vec![RecSpec {
                items: vec![SpecItem::Tag {
                    name: "j".into(),
                    init: Some(TagExpr::Bin(
                        crate::expr::ArithOp::Div,
                        Box::new(TagExpr::lit(1)),
                        Box::new(TagExpr::tag("k")),
                    )),
                }],
            }],
        )
        .unwrap();
        let input = Record::build().tag("k", 0).finish();
        assert_eq!(f.apply(&input), Err(ExprError::DivisionByZero));
    }

    #[test]
    fn display_matches_paper_notation() {
        let f = paper_filter();
        let s = f.to_string();
        assert!(s.starts_with("[{a,b,<c>} -> "));
        assert!(s.contains("z=a"));
        assert!(s.contains("<t>"));
        assert!(s.contains("(<c> + 1)"));
    }
}
