//! `snetc` — a compiler front end for the S-Net surface language.
//!
//! Parses a program (box and net declarations), runs the full static
//! analysis (filter validation, signature inference with subtyping and
//! flow inheritance), and reports:
//!
//! * the inferred type signature of every net;
//! * the boxes each net transitively uses (what must be bound before
//!   the net can run);
//! * the canonical pretty-printed form of the program.
//!
//! Usage:
//! ```text
//! snetc FILE.snet            # analyse a file
//! snetc -                    # read from stdin
//! snetc --expr 'a .. b'      # analyse a bare network expression
//!                            #  (requires --decls FILE for the boxes)
//! ```
//!
//! Exit code 0 = well-typed; 1 = parse or type error (message on
//! stderr); 2 = usage error.

use snet_lang::{parse_net_expr, parse_program, pretty_net, pretty_program, Env};
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: snetc FILE.snet | snetc - | snetc [--decls FILE.snet] --expr 'NETEXPR'");
    ExitCode::from(2)
}

fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut expr: Option<String> = None;
    let mut decls: Option<String> = None;
    let mut file: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--expr" => match it.next() {
                Some(e) => expr = Some(e),
                None => return usage(),
            },
            "--decls" => match it.next() {
                Some(d) => decls = Some(d),
                None => return usage(),
            },
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            other => {
                if file.is_some() {
                    return usage();
                }
                file = Some(other.to_string());
            }
        }
    }

    match (file, expr) {
        (Some(path), None) => analyse_program(&path),
        (None, Some(e)) => analyse_expr(decls.as_deref(), &e),
        _ => usage(),
    }
}

fn analyse_program(path: &str) -> ExitCode {
    let src = match read_source(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("snetc: {e}");
            return ExitCode::from(2);
        }
    };
    let program = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("snetc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let env = match program.env() {
        Ok(env) => env,
        Err(e) => {
            eprintln!("snetc: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("== declarations ==");
    for b in &program.boxes {
        println!(
            "box {:<20} : {} -> {}",
            b.name,
            b.sig.input_type(),
            b.sig.output_type()
        );
    }
    println!();
    println!("== inferred net signatures ==");
    for n in &program.nets {
        let sig = env
            .lookup_sig(&n.name)
            .expect("declared net has a signature");
        println!(
            "net {:<20} : {} -> {}",
            n.name,
            sig.input_type(),
            sig.output_type()
        );
        let boxes = env.box_closure(&n.body);
        println!(
            "    uses boxes: {}",
            if boxes.is_empty() {
                "(none)".to_string()
            } else {
                boxes.join(", ")
            }
        );
    }
    println!();
    println!("== canonical form ==");
    print!("{}", pretty_program(&program));
    ExitCode::SUCCESS
}

fn analyse_expr(decls: Option<&str>, expr: &str) -> ExitCode {
    let env = match decls {
        Some(path) => {
            let src = match read_source(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("snetc: {e}");
                    return ExitCode::from(2);
                }
            };
            match parse_program(&src).and_then(|p| {
                p.env().map_err(|e| snet_lang::ParseError {
                    message: e.to_string(),
                    line: 0,
                })
            }) {
                Ok(env) => env,
                Err(e) => {
                    eprintln!("snetc: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => Env::new(),
    };
    let ast = match parse_net_expr(expr) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("snetc: {e}");
            return ExitCode::FAILURE;
        }
    };
    match ast.infer(&env) {
        Ok(sig) => {
            println!("expr      : {}", pretty_net(&ast));
            println!("signature : {} -> {}", sig.input_type(), sig.output_type());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("snetc: {e}");
            ExitCode::FAILURE
        }
    }
}
