//! The paper's running example end-to-end: solve sudoku puzzles on all
//! three hybrid networks (Figures 1–3) and report the structural
//! metrics the paper argues about — pipeline depth, replicas per
//! stage, total `solveOneLevel` instances.
//!
//! Run with: `cargo run --release --example sudoku_pipeline`

use std::time::Instant;
use sudoku::networks::{solve_fig1, solve_fig2, solve_fig3};
use sudoku::puzzles;
use sudoku::sac_solver::{solve_puzzle, Policy};

fn main() {
    let puzzle = puzzles::classic9();
    println!("puzzle ({} clues):\n{puzzle}", puzzle.placed());

    // Reference: the pure-SaC Section 3 solver.
    let t0 = Instant::now();
    let (reference, stats) = solve_puzzle(&puzzle, Policy::MinTrues);
    let t_seq = t0.elapsed();
    assert!(reference.is_solved());
    println!(
        "pure SaC solver: {:?} ({} nodes, {} placements)\n",
        t_seq, stats.nodes, stats.placements
    );

    // Fig. 1: recursion as a demand-unfolded pipeline.
    let t0 = Instant::now();
    let run = solve_fig1(&puzzle);
    let t1 = t0.elapsed();
    assert_eq!(run.solutions[0], reference);
    let stages = run.metrics.max_matching("/stages");
    let boxes = run.metrics.count_matching("box:solveOneLevel/spawned");
    println!("Fig. 1  computeOpts .. solveOneLevel ** {{<done>}}");
    println!("        time {t1:?}, pipeline depth {stages} (bound: 81+1), {boxes} solveOneLevel instances\n");

    // Fig. 2: full unfolding with a parallel replicator per stage.
    let t0 = Instant::now();
    let run = solve_fig2(&puzzle);
    let t2 = t0.elapsed();
    assert_eq!(run.solutions[0], reference);
    let stages = run.metrics.max_matching("/stages");
    let max_width = run.metrics.max_matching("/branches");
    let boxes = run.metrics.count_matching("box:solveOneLevelK/spawned");
    println!("Fig. 2  computeOpts .. [{{}}->{{<k>=1}}] .. (solveOneLevelK !! <k>) ** {{<done>}}");
    println!(
        "        time {t2:?}, depth {stages}, max {max_width} replicas/stage (bound: 9), \
         {boxes} solveOneLevelK instances (bound: 729)\n"
    );

    // Fig. 3: throttled unfolding (mod 4, exit above level 40).
    let t0 = Instant::now();
    let run = solve_fig3(&puzzle, 4, 40);
    let t3 = t0.elapsed();
    assert_eq!(run.solutions[0], reference);
    let stages = run.metrics.max_matching("/stages");
    let max_width = run.metrics.max_matching("/branches");
    println!(
        "Fig. 3  throttled: [{{<k>}}->{{<k>=<k>%4}}], exit {{<level>}} if <level> > 40 .. solve"
    );
    println!(
        "        time {t3:?}, depth {stages} (bound: 40+1), max {max_width} replicas/stage \
         (bound: 4), {} exits completed by the tail solver\n",
        run.outputs
    );

    println!("solution:\n{}", run.solutions[0]);
    println!("all three networks agree with the pure solver");
}
