//! Throttle exploration — the Figure 3 design space.
//!
//! "For bigger sudokus or in situations where we cannot derive proper
//! upper limits for the unfoldings from the application itself, we
//! usually want to control the unfolding of the replicators" (paper,
//! Section 5). This example sweeps the two throttle parameters — the
//! modulo of the `<k>` filter (parallel width) and the `<level>`
//! cutoff (pipeline depth) — and prints how unfolding, thread count
//! and wall time respond.
//!
//! Run with: `cargo run --release --example throttled_search`

use std::time::Instant;
use sudoku::networks::solve_fig3;
use sudoku::puzzles;

fn main() {
    let puzzle = puzzles::medium9();
    println!("puzzle ({} clues):\n{puzzle}", puzzle.placed());
    println!(
        "{:>6} {:>7} | {:>9} {:>10} {:>10} {:>9} {:>12}",
        "mod", "cutoff", "depth", "max width", "boxes", "exits", "time"
    );

    for modulo in [1i64, 2, 4, 8] {
        for cutoff in [20i64, 40, 60] {
            let t0 = Instant::now();
            let run = solve_fig3(&puzzle, modulo, cutoff);
            let dt = t0.elapsed();
            assert!(
                !run.solutions.is_empty(),
                "throttled network must still find the solution"
            );
            let depth = run.metrics.max_matching("/stages");
            let width = run.metrics.max_matching("/branches");
            let boxes = run.metrics.count_matching("box:solveOneLevelL/spawned");
            println!(
                "{:>6} {:>7} | {:>9} {:>10} {:>10} {:>9} {:>12?}",
                modulo, cutoff, depth, width, boxes, run.outputs, dt
            );
            assert!(
                width as i64 <= modulo,
                "parallel width {width} exceeded the modulo throttle {modulo}"
            );
            assert!(
                depth as i64 <= cutoff + 2,
                "pipeline depth {depth} exceeded cutoff {cutoff} (+ exit guard)"
            );
        }
    }

    println!("\nall throttle bounds held (width <= mod, depth <= cutoff + guard)");
}
