//! A tour of the S-Net surface language as implemented here: parse a
//! program, inspect inferred signatures, pretty-print the canonical
//! form, evaluate filters standalone, and check how the type system
//! reacts to ill-formed compositions — everything the `snetc` CLI does,
//! as library calls.
//!
//! Run with: `cargo run --example language_tour`

use snet_lang::{parse_filter, parse_guard, parse_net_expr, parse_program, pretty_net};
use snet_types::Record;

fn main() {
    // ------------------------------------------------------------------
    // 1. A program with every construct the paper uses.
    // ------------------------------------------------------------------
    let src = "
        // Box declarations: ordered parameter lists, multivariant outputs.
        box computeOpts (board) -> (board, opts);
        box solveOneLevelL (board, opts) -> (board, opts, <k>, <level>);
        box solve (board, opts) -> (board, opts);

        // Nets compose declared components; nets can reference nets.
        net throttled = [{<k>} -> {<k>=<k>%4}] .. (solveOneLevelL !! <k>);
        net fig3 = computeOpts .. [{} -> {<k>=1}]
                .. throttled ** {<level>} if <level> > 40
                .. solve;
    ";
    let program = parse_program(src).expect("parses");
    let env = program.env().expect("type-checks");

    println!("== inferred signatures ==");
    for n in &program.nets {
        let sig = env.lookup_sig(&n.name).unwrap();
        println!(
            "net {:<10} : {}  ->  {}",
            n.name,
            sig.input_type(),
            sig.output_type()
        );
    }

    // ------------------------------------------------------------------
    // 2. Filters are pure: run one on a record directly.
    // ------------------------------------------------------------------
    let filter = parse_filter("[{a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=<c>+1}]").unwrap();
    let input = Record::build()
        .field("a", 10i64)
        .field("b", 20i64)
        .tag("c", 41)
        .field("extra", 99i64) // flow-inherits to both outputs
        .finish();
    println!("\n== filter {} ==", filter);
    for (i, out) in filter.apply(&input).unwrap().iter().enumerate() {
        println!("output {i}: {out:?}");
    }

    // ------------------------------------------------------------------
    // 3. Guards evaluate against tags.
    // ------------------------------------------------------------------
    let guard = parse_guard("<level> > 40 && !(<k> == 0)").unwrap();
    for (level, k) in [(41, 1), (41, 0), (39, 1)] {
        let r = Record::build().tag("level", level).tag("k", k).finish();
        println!("guard({level},{k}) = {:?}", guard.eval(&r).unwrap());
    }

    // ------------------------------------------------------------------
    // 4. Pretty-printing round-trips.
    // ------------------------------------------------------------------
    let ast = parse_net_expr("a .. (b || c) ** {<done>} .. d ! <k>").unwrap();
    let printed = pretty_net(&ast);
    println!("\n== canonical form ==\n{printed}");
    assert_eq!(parse_net_expr(&printed).unwrap(), ast);

    // ------------------------------------------------------------------
    // 5. The type system rejects impossible plumbing.
    // ------------------------------------------------------------------
    let bad = "
        box p (a) -> (b);
        box q (a) -> (c);
        net broken = p .. q;
    ";
    let err = parse_program(bad).unwrap().env().unwrap_err();
    println!("\n== rejected composition ==\n{err}");

    println!("\nlanguage tour OK");
}
