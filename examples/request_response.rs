//! The serve front door in ~60 lines: many concurrent callers, one
//! net, every response routed back to the caller whose request
//! produced it.
//!
//! The box never sees the correlation machinery — the reserved `#rid`
//! tag rides flow inheritance around it (see `snet_runtime::serve`
//! module docs).
//!
//! Run with: `cargo run --release --example request_response`

use snet_runtime::{NetBuilder, Service};
use snet_types::Record;

fn main() {
    let net = NetBuilder::from_source(
        "box square (x) -> (x, y);
         net main = square;",
    )
    .expect("program parses")
    .bind("square", |rec, em| {
        let x = rec.field("x").unwrap().as_int().unwrap();
        em.emit(Record::build().field("x", x).field("y", x * x).finish());
    })
    .build("main")
    .expect("network type-checks");

    let svc = Service::start(net);

    // 16 caller threads, each issuing 50 requests and checking it got
    // its own answers back — interleaved arbitrarily inside the net.
    std::thread::scope(|s| {
        for t in 0..16i64 {
            let svc = &svc;
            s.spawn(move || {
                for k in 0..50i64 {
                    let x = t * 1_000 + k;
                    let resp = svc
                        .call(Record::build().field("x", x).finish())
                        .expect("request accepted")
                        .wait()
                        .expect("response arrives");
                    let rec = &resp.records[0];
                    assert_eq!(rec.field("x").unwrap().as_int(), Some(x));
                    assert_eq!(rec.field("y").unwrap().as_int(), Some(x * x));
                }
            });
        }
    });

    let m = std::sync::Arc::clone(svc.metrics());
    svc.shutdown();
    println!(
        "served {} requests, {} completed, {} stray — all correlated",
        m.get("serve/requests"),
        m.get("serve/completed"),
        m.get("serve/stray"),
    );
    assert_eq!(m.get("serve/requests"), 800);
    assert_eq!(m.get("serve/completed"), 800);
}
