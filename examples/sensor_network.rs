//! A second application domain: a sensor-fusion network.
//!
//! Demonstrates that the two-layer model is not sudoku-specific. The
//! computation layer does data-parallel signal processing with
//! with-loops (calibration, statistics as folds); the coordination
//! layer splits streams per sensor (`!! <sensor>`), routes records by
//! *type* through a parallel composition (clean readings to the
//! summariser, anomalous ones to a quarantine filter), and merges
//! non-deterministically — the paper's "programs that adapt to the
//! load distribution in a concurrent system".
//!
//! Run with: `cargo run --release --example sensor_network`

use sacarray::{Array, Generator, WithLoop};
use snet_runtime::NetBuilder;
use snet_types::{Record, Value};

/// Mean of a sample array, as a fold with-loop.
fn mean(samples: &Array<f64>) -> f64 {
    let n = samples.size() as f64;
    let total = WithLoop::new()
        .gen(Generator::full(samples.shape()), move |iv| *samples.at(iv))
        .fold(0.0, |a, b| a + b);
    total / n
}

/// Variance, as a second fold.
fn variance(samples: &Array<f64>, mu: f64) -> f64 {
    let n = samples.size() as f64;
    let total = WithLoop::new()
        .gen(Generator::full(samples.shape()), move |iv| {
            let d = *samples.at(iv) - mu;
            d * d
        })
        .fold(0.0, |a, b| a + b);
    total / n
}

fn main() {
    let src = "
        // Remove per-sensor bias, data-parallel over the samples.
        box calibrate (samples, <bias_ppm>) -> (samples);
        // Classify: clean readings yield {stats}; anomalies keep the
        // raw samples and gain an <anomaly> tag.
        box analyze (samples) -> (stats) | (samples, <anomaly>);
        // Reduce a stats field to a printable report.
        box summarize (stats, <sensor>) -> (report, <sensor>);

        net main = calibrate
                .. (analyze !! <sensor>)
                .. (summarize || [{samples, <anomaly>} -> {quarantined=samples, <anomaly>=<anomaly>}]);
    ";

    let net = NetBuilder::from_source(src)
        .expect("program parses")
        .bind("calibrate", |rec, em| {
            let samples = rec.field("samples").unwrap().as_double_array().unwrap();
            let bias = rec.tag("bias_ppm").unwrap() as f64 / 1_000_000.0;
            let shape = samples.shape().clone();
            let samples = samples.clone();
            let corrected = WithLoop::new()
                .gen(Generator::full(&shape), move |iv| samples.at(iv) - bias)
                .genarray(shape, 0.0)
                .unwrap();
            em.emit(
                Record::build()
                    .field("samples", Value::from(corrected))
                    .finish(),
            );
        })
        .bind("analyze", |rec, em| {
            let samples = rec.field("samples").unwrap().as_double_array().unwrap();
            let mu = mean(samples);
            let var = variance(samples, mu);
            if var < 1.0 {
                em.emit(
                    Record::build()
                        .field("stats", Value::from(Array::from_vec(vec![mu, var])))
                        .finish(),
                );
            } else {
                em.emit(
                    Record::build()
                        .field("samples", Value::from(samples.clone()))
                        .tag("anomaly", (var * 1000.0) as i64)
                        .finish(),
                );
            }
        })
        .bind("summarize", |rec, em| {
            let stats = rec.field("stats").unwrap().as_double_array().unwrap();
            let sensor = rec.tag("sensor").unwrap();
            let report = format!(
                "sensor {sensor}: mean {:+.4}, variance {:.4}",
                stats.data()[0],
                stats.data()[1]
            );
            em.emit(
                Record::build()
                    .field("report", Value::from(report))
                    .tag("sensor", sensor)
                    .finish(),
            );
        })
        .build("main")
        .expect("network type-checks");

    println!("input type : {}", net.input_type());
    println!("output type: {}\n", net.output_type());

    // Synthesise readings for 4 sensors; sensor 2 is noisy.
    for batch in 0..3 {
        for sensor in 0..4i64 {
            let noisy = sensor == 2;
            let data: Vec<f64> = (0..4096)
                .map(|i| {
                    let x = i as f64 * 0.01 + batch as f64;
                    let signal = (x).sin() * 0.3;
                    let noise = if noisy {
                        ((i * 2654435761_usize) % 1000) as f64 / 100.0
                    } else {
                        0.0
                    };
                    signal + noise
                })
                .collect();
            net.send(
                Record::build()
                    .field("samples", Value::from(Array::from_vec(data)))
                    .tag("sensor", sensor)
                    .tag("bias_ppm", 1500)
                    .finish(),
            )
            .expect("reading matches net input");
        }
    }

    let outputs = net.finish();
    let mut reports = 0;
    let mut quarantined = 0;
    for rec in &outputs {
        if let Some(report) = rec.field("report") {
            println!("{}", report.as_str().unwrap());
            reports += 1;
        } else if rec.tag("anomaly").is_some() {
            let n = rec
                .field("quarantined")
                .and_then(|v| v.as_double_array())
                .map(|a| a.size())
                .unwrap_or(0);
            println!(
                "sensor {}: ANOMALY (variance x1000 = {}), {n} samples quarantined",
                rec.tag("sensor").unwrap(),
                rec.tag("anomaly").unwrap()
            );
            quarantined += 1;
        }
    }
    assert_eq!(reports, 9, "3 batches x 3 clean sensors");
    assert_eq!(quarantined, 3, "3 batches x 1 noisy sensor");
    println!("\nsensor network OK ({reports} reports, {quarantined} quarantined)");
}
