//! Quickstart: both layers of the paper in ~60 lines.
//!
//! Builds the paper's Section 4 example box `foo (a,<b>) -> (c) | (c,d,<e>)`,
//! wires it behind a filter, and runs records through — demonstrating
//! subtyping (the record carries an excess field `d`), flow
//! inheritance (that `d` reappears on outputs), and the SaC layer
//! (the box body is a data-parallel with-loop).
//!
//! Run with: `cargo run --example quickstart`

use sacarray::{Array, Generator, WithLoop};
use snet_runtime::NetBuilder;
use snet_types::{Record, Value};

fn main() {
    // --- Computation layer: a SaC-style function. -----------------------
    // Scale an array by a tag value, as a genarray with-loop.
    let scale = |arr: &Array<i64>, factor: i64| -> Array<i64> {
        let shape = arr.shape().clone();
        WithLoop::new()
            .gen(Generator::full(&shape), move |iv| arr.at(iv) * factor)
            .genarray(shape, 0)
            .expect("full generator always fits")
    };

    // --- Coordination layer: an S-Net program. ---------------------------
    // foo consumes field `a` (an array) and tag <b> (a scale factor);
    // it emits variant 1 {c} for small scales and variant 2 {c,d,<e>}
    // otherwise — the exact signature of the paper's example.
    let src = "
        box foo (a, <b>) -> (c) | (c, d, <e>);
        net main = [{a} -> {a, <b>=2}] .. foo;
    ";

    let net = NetBuilder::from_source(src)
        .expect("program parses")
        .bind("foo", move |rec, em| {
            let a = rec.field("a").unwrap().as_int_array().unwrap().clone();
            let b = rec.tag("b").unwrap();
            let scaled = scale(&a, b);
            if b < 10 {
                // snet_out(1, x): variant {c}.
                em.emit_variant(1, vec![Value::from(scaled)]);
            } else {
                // snet_out(2, x, y, 42): variant {c, d, <e>}.
                em.emit_variant(2, vec![Value::from(scaled), Value::Int(-1), Value::Int(42)]);
            }
        })
        .build("main")
        .expect("network type-checks");

    println!("network input type : {}", net.input_type());
    println!("network output type: {}", net.output_type());

    // A record with an EXCESS field d: foo's input type is {a,<b>} and
    // the filter's pattern is {a}; d rides along by flow inheritance.
    let rec = Record::build()
        .field("a", Value::from(Array::from_vec(vec![1, 2, 3, 4])))
        .field("d", Value::Int(7))
        .finish();
    net.send(rec).expect("record matches the network input");

    let outputs = net.finish();
    for (i, out) in outputs.iter().enumerate() {
        println!("output {i}: {out:?}");
    }

    let c = outputs[0].field("c").unwrap().as_int_array().unwrap();
    assert_eq!(c.data(), &[2, 4, 6, 8], "scaled by the filter's <b>=2");
    assert_eq!(
        outputs[0].field("d").unwrap().as_int(),
        Some(7),
        "flow inheritance re-attached the excess field d"
    );
    println!("quickstart OK");
}
