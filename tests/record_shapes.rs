//! Shape-plan record operations vs a retained naive reference.
//!
//! PR 4 replaced the per-record `split_for`/`inherit` loops (per-label
//! binary searches over `Vec`-backed records) with compiled per-shape
//! plans applied as array copies. This property test keeps the *old*
//! semantics alive as an executable model — sorted association lists
//! with explicit label-by-label splitting and present-labels-win
//! inheritance — and checks observational equivalence across
//! randomized records and types, including the paper's
//! duplicate-label-discard rule ("the field or tag is discarded"
//! when the output record already carries an inherited label) and
//! the field-vs-tag namespace split for same-named labels.

use proptest::prelude::*;
use snet_types::{Record, RecordType, Value};

// ---------------------------------------------------------------------------
// The naive reference model: sorted (kind, name) -> i64 association
// lists, implementing the paper's record semantics label by label,
// exactly as `record.rs` did before shape plans.
// ---------------------------------------------------------------------------

/// A model record: sorted, deduplicated `(label, value)` lists.
/// Field payloads are restricted to integers — the coordination layer
/// never looks at values, so integer payloads exercise every code
/// path while keeping the model trivially comparable.
#[derive(Clone, Debug, PartialEq)]
struct ModelRec {
    fields: Vec<(String, i64)>,
    tags: Vec<(String, i64)>,
}

impl ModelRec {
    fn new(mut fields: Vec<(String, i64)>, mut tags: Vec<(String, i64)>) -> ModelRec {
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        fields.dedup_by(|a, b| a.0 == b.0);
        tags.sort_by(|a, b| a.0.cmp(&b.0));
        tags.dedup_by(|a, b| a.0 == b.0);
        ModelRec { fields, tags }
    }

    fn matches(&self, ty: &ModelType) -> bool {
        ty.fields
            .iter()
            .all(|l| self.fields.iter().any(|(n, _)| n == l))
            && ty
                .tags
                .iter()
                .all(|l| self.tags.iter().any(|(n, _)| n == l))
    }

    /// The reference split: label-by-label membership tests.
    fn split_for(&self, ty: &ModelType) -> Option<(ModelRec, ModelRec)> {
        if !self.matches(ty) {
            return None;
        }
        let (mf, ef): (Vec<_>, Vec<_>) = self
            .fields
            .iter()
            .cloned()
            .partition(|(n, _)| ty.fields.contains(n));
        let (mt, et): (Vec<_>, Vec<_>) = self
            .tags
            .iter()
            .cloned()
            .partition(|(n, _)| ty.tags.contains(n));
        Some((
            ModelRec {
                fields: mf,
                tags: mt,
            },
            ModelRec {
                fields: ef,
                tags: et,
            },
        ))
    }

    /// The reference flow inheritance: present labels win, the
    /// inherited entry is discarded (paper, Section 4).
    fn inherit(mut self, excess: &ModelRec) -> ModelRec {
        for (n, v) in &excess.fields {
            if !self.fields.iter().any(|(m, _)| m == n) {
                self.fields.push((n.clone(), *v));
            }
        }
        for (n, v) in &excess.tags {
            if !self.tags.iter().any(|(m, _)| m == n) {
                self.tags.push((n.clone(), *v));
            }
        }
        self.fields.sort_by(|a, b| a.0.cmp(&b.0));
        self.tags.sort_by(|a, b| a.0.cmp(&b.0));
        self
    }

    fn to_record(&self) -> Record {
        let mut r = Record::new();
        for (n, v) in &self.fields {
            r.set_field(n, Value::Int(*v));
        }
        for (n, v) in &self.tags {
            r.set_tag(n, *v);
        }
        r
    }
}

/// A model type: sorted field and tag label-name sets.
#[derive(Clone, Debug, PartialEq)]
struct ModelType {
    fields: Vec<String>,
    tags: Vec<String>,
}

impl ModelType {
    fn to_record_type(&self) -> RecordType {
        let fields: Vec<&str> = self.fields.iter().map(String::as_str).collect();
        let tags: Vec<&str> = self.tags.iter().map(String::as_str).collect();
        RecordType::of(&fields, &tags)
    }
}

/// Converts a real record back into the model for comparison.
fn model_of(rec: &Record) -> ModelRec {
    ModelRec {
        fields: rec
            .fields()
            .map(|(l, v)| (l.name().to_string(), v.as_int().expect("int payloads only")))
            .collect(),
        tags: rec.tags().map(|(l, v)| (l.name().to_string(), v)).collect(),
    }
}

// ---------------------------------------------------------------------------
// Strategies: labels from a small shared pool so records and types
// overlap often (the interesting cases), same names appearing as both
// field and tag to exercise the namespace split, record sizes
// straddling the inline capacity.
// ---------------------------------------------------------------------------

/// Label-name pool. Deliberately includes so few names that duplicate
/// labels between record, type and excess are the common case.
const NAMES: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

fn arb_entries() -> impl Strategy<Value = Vec<(String, i64)>> {
    proptest::collection::vec((0usize..NAMES.len(), -100i64..100), 0..6).prop_map(|v| {
        v.into_iter()
            .map(|(i, val)| (NAMES[i].to_string(), val))
            .collect()
    })
}

fn arb_model_rec() -> impl Strategy<Value = ModelRec> {
    (arb_entries(), arb_entries()).prop_map(|(f, t)| ModelRec::new(f, t))
}

fn arb_model_type() -> impl Strategy<Value = ModelType> {
    let names = || {
        proptest::collection::vec(0usize..NAMES.len(), 0..4).prop_map(|v| {
            let mut v: Vec<String> = v.into_iter().map(|i| NAMES[i].to_string()).collect();
            v.sort();
            v.dedup();
            v
        })
    };
    (names(), names()).prop_map(|(fields, tags)| ModelType { fields, tags })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `split_for` agrees with the reference on both halves (or both
    /// reject), for every random record/type pair.
    #[test]
    fn split_for_matches_reference(m in arb_model_rec(), ty in arb_model_type()) {
        let rec = m.to_record();
        let rt = ty.to_record_type();
        match (m.split_for(&ty), rec.split_for(&rt)) {
            (None, None) => {}
            (Some((mm, me)), Some((rm, re))) => {
                prop_assert_eq!(&model_of(&rm), &mm, "matched half diverged");
                prop_assert_eq!(&model_of(&re), &me, "excess half diverged");
                // The matched half's type is exactly the input type.
                prop_assert_eq!(rm.record_type(), rt);
                // Reassembly: matched + excess == original record.
                prop_assert_eq!(rm.inherit(&re), rec);
            }
            (model, real) => {
                return Err(TestCaseError::Fail(format!(
                    "match disagreement: model {model:?} vs real {real:?}"
                )));
            }
        }
    }

    /// `inherit` agrees with the reference — including the
    /// duplicate-label-discard rule when excess and output overlap.
    #[test]
    fn inherit_matches_reference(out in arb_model_rec(), excess in arb_model_rec()) {
        let real = out.to_record().inherit(&excess.to_record());
        let model = out.clone().inherit(&excess);
        prop_assert_eq!(model_of(&real), model);
    }

    /// `excess_for` is exactly the excess half of `split_for`.
    #[test]
    fn excess_for_is_split_excess(m in arb_model_rec(), ty in arb_model_type()) {
        let rec = m.to_record();
        let rt = ty.to_record_type();
        let split = rec.split_for(&rt);
        let excess = rec.excess_for(&rt);
        match (split, excess) {
            (None, None) => {}
            (Some((_, e1)), Some(e2)) => prop_assert_eq!(e1, e2),
            (s, e) => {
                return Err(TestCaseError::Fail(format!(
                    "split {s:?} vs excess {e:?} disagree on matching"
                )));
            }
        }
    }

    /// Shape identity: two records built from the same model (in any
    /// construction order) share one interned shape id, and equality
    /// agrees with the model.
    #[test]
    fn shape_identity_and_equality(a in arb_model_rec(), b in arb_model_rec()) {
        let ra = a.to_record();
        let rb = b.to_record();
        prop_assert_eq!(a == b, ra == rb);
        prop_assert_eq!(
            a.fields.iter().map(|(n, _)| n).eq(b.fields.iter().map(|(n, _)| n))
                && a.tags.iter().map(|(n, _)| n).eq(b.tags.iter().map(|(n, _)| n)),
            ra.shape() == rb.shape()
        );
    }
}
