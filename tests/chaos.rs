//! Fault containment end-to-end: box panics contained per
//! [`FaultPolicy`], typed faults surfacing through nets, traces and
//! the serve front door, and the seeded chaos acceptance run.
//!
//! The randomised topology soak lives in `random_networks.rs`; this
//! file pins the behavioural contracts on hand-written nets where the
//! expected outcome is exact.

use snet_runtime::{CallError, ChaosConfig, FaultPolicy, Net, NetBuilder, Service, TraceLog};
use snet_types::Record;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A net with one box that panics whenever `x == poison`.
fn poison_net(policy: FaultPolicy, poison: i64) -> Net {
    NetBuilder::from_source("box f (x) -> (x); net main = f;")
        .unwrap()
        .bind("f", move |r: &Record, e: &mut snet_runtime::Emitter| {
            if r.field("x").unwrap().as_int() == Some(poison) {
                panic!("poison record");
            }
            e.emit(r.clone());
        })
        .fault_policy(policy)
        .build("main")
        .unwrap()
}

fn xs(net: &Net, values: &[i64]) {
    for v in values {
        net.send(Record::build().field("x", *v).finish()).unwrap();
    }
}

fn outs(records: Vec<Record>) -> Vec<i64> {
    records
        .iter()
        .map(|r| r.field("x").unwrap().as_int().unwrap())
        .collect()
}

#[test]
fn skip_policy_drops_poison_record_and_keeps_component_alive() {
    let net = poison_net(FaultPolicy::SkipRecord, 13);
    let metrics = Arc::clone(net.metrics());
    let faults = {
        xs(&net, &[1, 13, 2]);
        let got = outs(net.finish());
        // The component survived the poison record and processed the
        // one after it.
        assert_eq!(got, vec![1, 2]);
        metrics
    };
    assert_eq!(faults.get("runtime/component_panics"), 1);
    assert_eq!(faults.sum_matching("records_skipped"), 1);
}

#[test]
fn fault_log_carries_the_dropped_record() {
    let net = poison_net(FaultPolicy::SkipRecord, 7);
    xs(&net, &[7]);
    // The box thread raises the fault asynchronously; poll the net's
    // fault log rather than racing it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while net.faults().is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let faults = net.faults();
    assert_eq!(faults.len(), 1);
    assert!(
        faults[0].component.contains("box:f"),
        "{}",
        faults[0].component
    );
    assert_eq!(faults[0].msg, "poison record");
    let dropped = faults[0].dropped.as_ref().expect("terminal skip drops");
    assert_eq!(dropped.field("x").unwrap().as_int(), Some(7));
    assert!(outs(net.finish()).is_empty());
}

#[test]
fn restart_recovers_transient_failures() {
    // Fails the first two attempts on every record, then succeeds:
    // a transient bug the restart budget rides out with no loss.
    let attempts = Arc::new(AtomicU64::new(0));
    let a = Arc::clone(&attempts);
    let net = NetBuilder::from_source("box f (x) -> (x); net main = f;")
        .unwrap()
        .bind("f", move |r: &Record, e: &mut snet_runtime::Emitter| {
            if a.fetch_add(1, Ordering::Relaxed) % 3 != 2 {
                panic!("transient");
            }
            e.emit(r.clone());
        })
        .fault_policy(FaultPolicy::Restart {
            max_retries: 3,
            backoff: Duration::ZERO,
        })
        .build("main")
        .unwrap();
    let metrics = Arc::clone(net.metrics());
    xs(&net, &[1, 2, 3]);
    let got = outs(net.finish());
    assert_eq!(got, vec![1, 2, 3], "every record recovered");
    assert_eq!(metrics.sum_matching("records_skipped"), 0);
    assert_eq!(
        metrics.sum_matching("restarts"),
        6,
        "two retries per record"
    );
    // Each recovery is one fault incident (dropped: None).
    assert_eq!(metrics.get("runtime/component_panics"), 3);
}

#[test]
fn restart_budget_exhausts_to_skip_in_a_net() {
    let net = NetBuilder::from_source("box f (x) -> (x); net main = f;")
        .unwrap()
        .bind("f", move |r: &Record, e: &mut snet_runtime::Emitter| {
            if r.field("x").unwrap().as_int() == Some(13) {
                panic!("hard poison");
            }
            e.emit(r.clone());
        })
        .fault_policy(FaultPolicy::Restart {
            max_retries: 2,
            backoff: Duration::ZERO,
        })
        .build("main")
        .unwrap();
    let metrics = Arc::clone(net.metrics());
    xs(&net, &[13, 5]);
    let got = outs(net.finish());
    assert_eq!(got, vec![5]);
    assert_eq!(metrics.sum_matching("restarts"), 2);
    assert_eq!(metrics.sum_matching("records_skipped"), 1);
    assert_eq!(metrics.get("runtime/component_panics"), 1, "one incident");
}

#[test]
fn failnet_policy_still_kills_the_net() {
    // The default policy is the seed's behaviour: the panic unwinds
    // through join_all. The tracker still accounts the death as a
    // fault incident with the component's task name.
    let net = poison_net(FaultPolicy::FailNet, 13);
    let metrics = Arc::clone(net.metrics());
    xs(&net, &[13]);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || net.finish()));
    assert!(r.is_err(), "FailNet must propagate the box panic");
    assert!(metrics.get("runtime/component_panics") >= 1);
}

#[test]
fn fused_and_unfused_contain_chaos_identically() {
    // A linear two-box chain — the fusion pass collapses it into one
    // scheduled component. The chaos decision stream is keyed by
    // per-stage path and record index, both invariant under fusion,
    // so the fused and unfused runs drop the same records and emit
    // byte-identical output.
    let run = |fuse: bool| {
        let net = NetBuilder::from_source(
            "box a (x) -> (x);
             box b (x) -> (x);
             net main = a .. b;",
        )
        .unwrap()
        .bind("a", |r: &Record, e: &mut snet_runtime::Emitter| {
            e.emit(r.clone())
        })
        .bind("b", |r: &Record, e: &mut snet_runtime::Emitter| {
            e.emit(r.clone())
        })
        .fault_policy(FaultPolicy::SkipRecord)
        .chaos(ChaosConfig::new(0xBADC0DE, 0.2))
        .fuse(fuse)
        .build("main")
        .unwrap();
        let metrics = Arc::clone(net.metrics());
        for i in 0..200i64 {
            net.send(Record::build().field("x", i).finish()).unwrap();
        }
        let got = outs(net.finish());
        (
            got,
            metrics.get("runtime/chaos_injected"),
            metrics.sum_matching("records_skipped"),
        )
    };
    let fused = run(true);
    let unfused = run(false);
    assert!(
        fused.1 > 0,
        "rate 0.2 over 2 stages x 200 records must inject"
    );
    assert_eq!(fused, unfused);
    // Conservation: out + skipped == in.
    assert_eq!(fused.0.len() as u64 + fused.2, 200);
}

#[test]
fn chaos_off_guarded_run_is_byte_identical_to_unguarded() {
    // SkipRecord with no injector engages the guard machinery (buffered
    // emissions, catch_unwind) — it must be a transparent wrapper.
    let run = |policy: FaultPolicy| {
        let net = NetBuilder::from_source(
            "box a (x) -> (x);
             box b (x) -> (x);
             net main = a .. b;",
        )
        .unwrap()
        .bind("a", |r: &Record, e: &mut snet_runtime::Emitter| {
            e.emit(r.clone())
        })
        .bind("b", |r: &Record, e: &mut snet_runtime::Emitter| {
            e.emit(r.clone())
        })
        .fault_policy(policy)
        .build("main")
        .unwrap();
        for i in 0..100i64 {
            net.send(Record::build().field("x", i).finish()).unwrap();
        }
        outs(net.finish())
    };
    assert_eq!(run(FaultPolicy::SkipRecord), run(FaultPolicy::FailNet));
}

#[test]
fn trace_log_records_faults_alongside_stream_entries() {
    let log = TraceLog::new();
    let net = NetBuilder::from_source("box f (x) -> (x); net main = f;")
        .unwrap()
        .bind("f", |r: &Record, e: &mut snet_runtime::Emitter| {
            if r.field("x").unwrap().as_int() == Some(2) {
                panic!("traced failure");
            }
            e.emit(r.clone());
        })
        .fault_policy(FaultPolicy::SkipRecord)
        .observe(log.observer())
        .on_fault(log.fault_observer())
        .build("main")
        .unwrap();
    xs(&net, &[1, 2, 3]);
    let got = outs(net.finish());
    assert_eq!(got, vec![1, 3]);
    let faults = log.faults();
    assert_eq!(faults.len(), 1);
    assert!(faults[0].dropped);
    assert_eq!(faults[0].msg, "traced failure");
    assert!(log.render().contains("[FAULT]"));
}

// ---------------------------------------------------------------------------
// Serve: faults resolve requests promptly, strays are attributable,
// a demux death strands nobody.
// ---------------------------------------------------------------------------

fn poison_service(policy: FaultPolicy) -> Service {
    Service::start(poison_net(policy, 13))
}

fn call_x(svc: &Service, x: i64) -> Result<i64, CallError> {
    let h = svc.call(Record::build().field("x", x).finish())?;
    let resp = h.wait_deadline(Instant::now() + Duration::from_secs(10))?;
    Ok(resp.records[0].field("x").unwrap().as_int().unwrap())
}

#[test]
fn faulted_request_resolves_promptly_with_typed_error() {
    let svc = poison_service(FaultPolicy::SkipRecord);
    assert_eq!(call_x(&svc, 1).unwrap(), 1);
    let t0 = Instant::now();
    match call_x(&svc, 13) {
        Err(CallError::Faulted { component, msg }) => {
            assert!(component.contains("box:f"), "{component}");
            assert_eq!(msg, "poison record");
        }
        other => panic!("expected Faulted, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "fault must resolve promptly, not at the deadline"
    );
    // The service keeps serving after the fault.
    assert_eq!(call_x(&svc, 2).unwrap(), 2);
    assert_eq!(svc.metrics().get("serve/faulted"), 1);
    assert_eq!(svc.inflight(), 0, "faulted slot left the pending map");
    svc.shutdown();
}

/// A service over a box that sleeps `x` milliseconds before echoing.
fn sleepy_service() -> Service {
    let net = NetBuilder::from_source("box f (x) -> (x); net main = f;")
        .unwrap()
        .bind("f", |r: &Record, e: &mut snet_runtime::Emitter| {
            let ms = r.field("x").unwrap().as_int().unwrap();
            if ms > 0 {
                std::thread::sleep(Duration::from_millis(ms as u64));
            }
            e.emit(r.clone());
        })
        .build("main")
        .unwrap();
    Service::start(net)
}

#[test]
fn late_record_after_deadline_is_counted_and_observed_as_stray() {
    let observed: Arc<observed::Paths> = Default::default();
    let obs = Arc::clone(&observed);
    let net = NetBuilder::from_source("box f (x) -> (x); net main = f;")
        .unwrap()
        .bind("f", |r: &Record, e: &mut snet_runtime::Emitter| {
            std::thread::sleep(Duration::from_millis(150));
            e.emit(r.clone());
        })
        .observe(Arc::new(move |path: &str, _dir, _rec| {
            obs.push(path);
        }))
        .build("main")
        .unwrap();
    let svc = Service::start(net);
    let h = svc.call(Record::build().field("x", 1i64).finish()).unwrap();
    // Give up long before the box answers: the response arrives late
    // and must be dropped loudly — counted AND visible to observers.
    let r = h.wait_deadline(Instant::now() + Duration::from_millis(10));
    assert!(matches!(r, Err(CallError::Deadline)), "{r:?}");
    let deadline = Instant::now() + Duration::from_secs(10);
    while svc.metrics().get("serve/stray") == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(svc.metrics().get("serve/stray"), 1);
    assert!(
        observed.contains("serve/stray"),
        "stray drop must reach stream observers"
    );
    svc.shutdown();
}

/// Tiny shared path collector for observer assertions.
mod observed {
    use std::sync::Mutex;

    #[derive(Default)]
    pub struct Paths(Mutex<Vec<String>>);

    impl Paths {
        pub fn push(&self, p: &str) {
            self.0.lock().unwrap().push(p.to_string());
        }
        pub fn contains(&self, p: &str) -> bool {
            self.0.lock().unwrap().iter().any(|x| x == p)
        }
    }
}

#[test]
fn demux_panic_fails_open_requests_instead_of_stranding_them() {
    // Force a demux death through the one hook external code has on
    // that thread: a stream observer that panics when the stray-drop
    // event fires. The contract: the panic is counted and every open
    // request resolves with ServiceStopped — nobody hangs.
    let net = NetBuilder::from_source("box f (x) -> (x); net main = f;")
        .unwrap()
        .bind("f", |r: &Record, e: &mut snet_runtime::Emitter| {
            let ms = r.field("x").unwrap().as_int().unwrap();
            std::thread::sleep(Duration::from_millis(ms as u64));
            e.emit(r.clone());
        })
        .observe(Arc::new(|path: &str, _dir, _rec| {
            if path == "serve/stray" {
                panic!("observer bug");
            }
        }))
        .build("main")
        .unwrap();
    let svc = Service::start(net);
    let metrics = Arc::clone(svc.metrics());
    // Request 1 goes stray: abandoned at its deadline, answered late.
    let h1 = svc
        .call(Record::build().field("x", 100i64).finish())
        .unwrap();
    // Request 2 is still open when the stray record kills the demux.
    let h2 = svc
        .call(Record::build().field("x", 400i64).finish())
        .unwrap();
    let r1 = h1.wait_deadline(Instant::now() + Duration::from_millis(10));
    assert!(matches!(r1, Err(CallError::Deadline)), "{r1:?}");
    let r2 = h2.wait_deadline(Instant::now() + Duration::from_secs(10));
    assert!(matches!(r2, Err(CallError::ServiceStopped)), "{r2:?}");
    assert_eq!(metrics.get("serve/demux_panics"), 1);
    assert_eq!(svc.inflight(), 0, "fail_pending cleared every slot");
    // Do not join the net: the demux is gone, but the components wind
    // down via EOS when the service drops its ingress sender.
}

#[test]
fn drain_reports_completed_and_stranded_requests() {
    // A box that *swallows* negative records (after a sleep that
    // outlasts the grace window): the owning request can never
    // complete, so it is genuinely stranded — unlike a merely slow
    // echo, which the net would still answer during wind-down.
    let net = NetBuilder::from_source("box f (x) -> (x); net main = f;")
        .unwrap()
        .bind("f", |r: &Record, e: &mut snet_runtime::Emitter| {
            if r.field("x").unwrap().as_int().unwrap() < 0 {
                std::thread::sleep(Duration::from_millis(500));
                return; // swallowed: no response record
            }
            e.emit(r.clone());
        })
        .build("main")
        .unwrap();
    let svc = Service::start(net);
    // Two requests complete before the drain...
    assert_eq!(call_x(&svc, 0).unwrap(), 0);
    assert_eq!(call_x(&svc, 1).unwrap(), 1);
    // ...one swallowed one is still open when the grace window closes.
    let h = svc
        .call(Record::build().field("x", -1i64).finish())
        .unwrap();
    let report = svc.drain(Duration::from_millis(20));
    assert_eq!(report.completed, 2);
    assert_eq!(report.faulted, 0);
    assert_eq!(report.stranded, 1);
    let r = h.wait_deadline(Instant::now() + Duration::from_secs(10));
    assert!(
        matches!(r, Err(CallError::ServiceStopped)),
        "stranded request resolves, never hangs: {r:?}"
    );
}

#[test]
fn drain_with_ample_grace_strands_nothing() {
    let svc = sleepy_service();
    let h = svc
        .call(Record::build().field("x", 50i64).finish())
        .unwrap();
    let report = svc.drain(Duration::from_secs(10));
    assert_eq!(report.stranded, 0);
    assert_eq!(report.completed, 1);
    assert!(h
        .wait_deadline(Instant::now() + Duration::from_secs(1))
        .is_ok());
}

// ---------------------------------------------------------------------------
// The acceptance run: 1% seeded chaos, Restart policy, 10k requests.
// ---------------------------------------------------------------------------

#[test]
fn chaos_serve_acceptance_10k_requests_no_hangs() {
    // ISSUE 8 acceptance: under a seeded 1% panic rate with the
    // Restart policy, a 10k-request serve run completes with zero
    // caller hangs; affected requests resolve as Faulted within the
    // deadline; unaffected requests are neither lost nor misrouted;
    // and `runtime/component_panics` matches the injected count.
    //
    // (Chaos decisions are per record, so a poisoned record panics on
    // every restart attempt and terminally skips: injected == panics
    // == faulted, and restarts == 2 x injected.)
    const CALLERS: usize = 8;
    const PER_CALLER: usize = 1250;
    let net = NetBuilder::from_source("box f (x) -> (x); net main = f;")
        .unwrap()
        .bind("f", |r: &Record, e: &mut snet_runtime::Emitter| {
            e.emit(r.clone())
        })
        .fault_policy(FaultPolicy::Restart {
            max_retries: 2,
            backoff: Duration::from_millis(1),
        })
        .chaos(ChaosConfig::new(0x5EED, 0.01))
        .build("main")
        .unwrap();
    let svc = Arc::new(Service::start(net));
    let ok = Arc::new(AtomicU64::new(0));
    let faulted = Arc::new(AtomicU64::new(0));
    let misrouted = Arc::new(AtomicU64::new(0));
    let other = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();
    for c in 0..CALLERS {
        let svc = Arc::clone(&svc);
        let (ok, faulted, misrouted, other) = (
            Arc::clone(&ok),
            Arc::clone(&faulted),
            Arc::clone(&misrouted),
            Arc::clone(&other),
        );
        threads.push(std::thread::spawn(move || {
            for i in 0..PER_CALLER {
                let x = (c * PER_CALLER + i) as i64;
                let h = svc.call(Record::build().field("x", x).finish()).unwrap();
                // A hang shows up as a Deadline error here, and the
                // 60 s ceiling keeps the test itself bounded.
                match h.wait_deadline(Instant::now() + Duration::from_secs(60)) {
                    Ok(resp) => {
                        if resp.records[0].field("x").unwrap().as_int() == Some(x) {
                            ok.fetch_add(1, Ordering::Relaxed);
                        } else {
                            misrouted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(CallError::Faulted { .. }) => {
                        faulted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        other.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let (ok, faulted) = (ok.load(Ordering::Relaxed), faulted.load(Ordering::Relaxed));
    let total = (CALLERS * PER_CALLER) as u64;
    assert_eq!(other.load(Ordering::Relaxed), 0, "no hangs, no stops");
    assert_eq!(
        misrouted.load(Ordering::Relaxed),
        0,
        "no cross-request leaks"
    );
    assert_eq!(ok + faulted, total, "every caller resolved");
    let m = Arc::clone(svc.metrics());
    let injected = m.get("runtime/chaos_injected");
    assert!(injected > 0, "1% of 10k must inject");
    assert_eq!(m.get("runtime/component_panics"), injected);
    assert_eq!(m.get("serve/faulted"), faulted);
    assert_eq!(
        faulted, injected,
        "every injected panic resolved one caller"
    );
    assert_eq!(m.sum_matching("restarts"), 2 * injected);
    assert_eq!(m.get("serve/stray"), 0);
    let report = Arc::try_unwrap(svc)
        .unwrap_or_else(|_| panic!("all callers done"))
        .drain(Duration::from_secs(10));
    assert_eq!(report.stranded, 0);
    assert_eq!(report.completed, ok);
    assert_eq!(report.faulted, faulted);
}
