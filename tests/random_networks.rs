//! Randomised network topology stress test: build arbitrary
//! well-typed combinator trees over identity components, push random
//! record streams through, and check conservation — every record
//! comes out exactly once, payloads intact, no deadlock, no loss.
//!
//! This exercises the runtime's plumbing (dispatchers, mergers, sort
//! barriers, dynamic replicas, EOS cascades) across shapes no
//! hand-written test enumerates.

use proptest::prelude::*;
use snet_lang::{Env, NetAst};
use snet_runtime::{Bindings, Net, Plan};
use snet_types::{BoxSig, Label, Record};

/// A random combinator tree over the identity box `id (x, <k>) -> (x, <k>)`.
/// Star is excluded: an identity box never produces the exit pattern,
/// so a star over it would loop forever by design (the type system
/// rejects it statically, in fact — see `star_rejects_never_exiting`).
fn arb_net() -> impl Strategy<Value = NetAst> {
    let leaf = Just(NetAst::boxref("id"));
    leaf.prop_recursive(4, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| NetAst::serial(a, b)),
            (inner.clone(), inner.clone(), any::<bool>()).prop_map(|(a, b, det)| {
                if det {
                    NetAst::parallel_det(a, b)
                } else {
                    NetAst::parallel(a, b)
                }
            }),
            (inner, any::<bool>()).prop_map(|(a, det)| {
                if det {
                    NetAst::split_det(a, "k")
                } else {
                    NetAst::split(a, "k")
                }
            }),
        ]
    })
}

fn build(ast: &NetAst) -> Net {
    let mut env = Env::new();
    env.declare_box(
        "id",
        BoxSig::new(
            vec![Label::field("x"), Label::tag("k")],
            vec![vec![Label::field("x"), Label::tag("k")]],
        ),
    )
    .unwrap();
    let bindings = Bindings::new().bind("id", |rec: &Record, em: &mut snet_runtime::Emitter| {
        em.emit(rec.clone());
    });
    let plan: Plan = snet_runtime::compile(ast, &env, &bindings).expect("random net compiles");
    Net::spawn(plan, Vec::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn records_are_conserved_through_any_topology(
        ast in arb_net(),
        xs in proptest::collection::vec((0i64..1_000_000, 0i64..5), 0..40),
    ) {
        let net = build(&ast);
        for (x, k) in &xs {
            net.send(Record::build().field("x", *x).tag("k", *k).finish())
                .unwrap();
        }
        let out = net.finish();
        prop_assert_eq!(out.len(), xs.len(), "record count changed in {:?}", ast);
        // Multiset of payloads preserved.
        let mut got: Vec<(i64, i64)> = out
            .iter()
            .map(|r| {
                (
                    r.field("x").unwrap().as_int().unwrap(),
                    r.tag("k").unwrap(),
                )
            })
            .collect();
        let mut want = xs.clone();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Fully deterministic topologies additionally preserve ORDER.
    #[test]
    fn det_only_topologies_preserve_order(
        depth in 1usize..4,
        xs in proptest::collection::vec((0i64..1_000_000, 0i64..5), 0..30),
    ) {
        // A nested det-only tree: ((id ! <k>) | (id ! <k>)) | ... deep.
        let mut ast = NetAst::split_det(NetAst::boxref("id"), "k");
        for _ in 0..depth {
            ast = NetAst::parallel_det(
                ast.clone(),
                NetAst::split_det(NetAst::boxref("id"), "k"),
            );
        }
        let net = build(&ast);
        for (x, k) in &xs {
            net.send(Record::build().field("x", *x).tag("k", *k).finish())
                .unwrap();
        }
        let out = net.finish();
        let got: Vec<i64> = out
            .iter()
            .map(|r| r.field("x").unwrap().as_int().unwrap())
            .collect();
        let want: Vec<i64> = xs.iter().map(|(x, _)| *x).collect();
        prop_assert_eq!(got, want);
    }
}
