//! Randomised network topology stress test: build arbitrary
//! well-typed combinator trees over identity components, push random
//! record streams through, and check conservation — every record
//! comes out exactly once, payloads intact, no deadlock, no loss.
//!
//! This exercises the runtime's plumbing (dispatchers, mergers, sort
//! barriers, dynamic replicas, EOS cascades) across shapes no
//! hand-written test enumerates.

use proptest::prelude::*;
use snet_lang::{Env, NetAst};
use snet_runtime::{
    Bindings, ChaosConfig, Executor, FaultPolicy, Net, Plan, RunCfg, ThreadPerComponent,
    WorkStealingPool,
};
use snet_types::{BoxSig, Label, Record};
use std::sync::Arc;

/// A random combinator tree over the identity box `id (x, <k>) -> (x, <k>)`.
/// Star is excluded: an identity box never produces the exit pattern,
/// so a star over it would loop forever by design (the type system
/// rejects it statically, in fact — see `star_rejects_never_exiting`).
fn arb_net() -> impl Strategy<Value = NetAst> {
    let leaf = Just(NetAst::boxref("id"));
    leaf.prop_recursive(4, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| NetAst::serial(a, b)),
            (inner.clone(), inner.clone(), any::<bool>()).prop_map(|(a, b, det)| {
                if det {
                    NetAst::parallel_det(a, b)
                } else {
                    NetAst::parallel(a, b)
                }
            }),
            (inner, any::<bool>()).prop_map(|(a, det)| {
                if det {
                    NetAst::split_det(a, "k")
                } else {
                    NetAst::split(a, "k")
                }
            }),
        ]
    })
}

fn build_full(ast: &NetAst, cfg: RunCfg, fuse: bool, executor: Arc<dyn Executor>) -> Net {
    let mut env = Env::new();
    env.declare_box(
        "id",
        BoxSig::new(
            vec![Label::field("x"), Label::tag("k")],
            vec![vec![Label::field("x"), Label::tag("k")]],
        ),
    )
    .unwrap();
    let bindings = Bindings::new().bind("id", |rec: &Record, em: &mut snet_runtime::Emitter| {
        em.emit(rec.clone());
    });
    let plan: Plan =
        snet_runtime::compile_cfg(ast, &env, &bindings, fuse).expect("random net compiles");
    Net::spawn_cfg(plan, Vec::new(), executor, cfg)
}

fn build_cfg(ast: &NetAst, cfg: RunCfg) -> Net {
    build_full(
        ast,
        cfg,
        snet_runtime::fuse_default(),
        Arc::new(ThreadPerComponent),
    )
}

fn build(ast: &NetAst) -> Net {
    build_cfg(ast, RunCfg::default())
}

fn drive(net: Net, xs: &[(i64, i64)]) -> Vec<(i64, i64)> {
    for (x, k) in xs {
        net.send(Record::build().field("x", *x).tag("k", *k).finish())
            .unwrap();
    }
    net.finish()
        .iter()
        .map(|r| (r.field("x").unwrap().as_int().unwrap(), r.tag("k").unwrap()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn records_are_conserved_through_any_topology(
        ast in arb_net(),
        xs in proptest::collection::vec((0i64..1_000_000, 0i64..5), 0..40),
    ) {
        let net = build(&ast);
        for (x, k) in &xs {
            net.send(Record::build().field("x", *x).tag("k", *k).finish())
                .unwrap();
        }
        let out = net.finish();
        prop_assert_eq!(out.len(), xs.len(), "record count changed in {:?}", ast);
        // Multiset of payloads preserved.
        let mut got: Vec<(i64, i64)> = out
            .iter()
            .map(|r| {
                (
                    r.field("x").unwrap().as_int().unwrap(),
                    r.tag("k").unwrap(),
                )
            })
            .collect();
        let mut want = xs.clone();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Fully deterministic topologies additionally preserve ORDER.
    #[test]
    fn det_only_topologies_preserve_order(
        depth in 1usize..4,
        xs in proptest::collection::vec((0i64..1_000_000, 0i64..5), 0..30),
    ) {
        // A nested det-only tree: ((id ! <k>) | (id ! <k>)) | ... deep.
        let mut ast = NetAst::split_det(NetAst::boxref("id"), "k");
        for _ in 0..depth {
            ast = NetAst::parallel_det(
                ast.clone(),
                NetAst::split_det(NetAst::boxref("id"), "k"),
            );
        }
        let net = build(&ast);
        for (x, k) in &xs {
            net.send(Record::build().field("x", *x).tag("k", *k).finish())
                .unwrap();
        }
        let out = net.finish();
        let got: Vec<i64> = out
            .iter()
            .map(|r| r.field("x").unwrap().as_int().unwrap())
            .collect();
        let want: Vec<i64> = xs.iter().map(|(x, _)| *x).collect();
        prop_assert_eq!(got, want);
    }

    /// Bounding an arbitrary topology changes *when* producers run,
    /// never *what* comes out: the delivered multiset equals the
    /// unbounded run's, even at bound 1 (maximum pressure).
    #[test]
    fn bounded_topologies_deliver_the_same_records(
        ast in arb_net(),
        bound in 1usize..9,
        xs in proptest::collection::vec((0i64..1_000_000, 0i64..5), 0..40),
    ) {
        let mut unbounded = drive(build(&ast), &xs);
        let mut bounded = drive(
            build_cfg(&ast, RunCfg { bound: Some(bound), ..RunCfg::default() }),
            &xs,
        );
        unbounded.sort();
        bounded.sort();
        prop_assert_eq!(bounded, unbounded, "bound {} changed output of {:?}", bound, ast);
    }

    /// Under a fully deterministic topology the comparison tightens to
    /// exact sequence equality: credit waits must not perturb sort
    /// record interleaving.
    #[test]
    fn bounded_det_topologies_preserve_order(
        depth in 1usize..4,
        bound in 1usize..6,
        xs in proptest::collection::vec((0i64..1_000_000, 0i64..5), 0..30),
    ) {
        let mut ast = NetAst::split_det(NetAst::boxref("id"), "k");
        for _ in 0..depth {
            ast = NetAst::parallel_det(
                ast.clone(),
                NetAst::split_det(NetAst::boxref("id"), "k"),
            );
        }
        let got = drive(
            build_cfg(&ast, RunCfg { bound: Some(bound), ..RunCfg::default() }),
            &xs,
        );
        prop_assert_eq!(got, xs);
    }
}

// ---------------------------------------------------------------------------
// Chaos soak: seeded fault injection over random topologies.
// ---------------------------------------------------------------------------

/// Runs `f` on a helper thread and panics if it takes longer than
/// `secs` — turns a would-be hang into a test failure. The helper
/// thread is leaked on timeout, which is acceptable in a test binary.
fn with_watchdog<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(std::time::Duration::from_secs(secs))
        .expect("chaos soak run hung (watchdog fired)")
}

/// Output multiset plus the fault counters of one chaos run.
#[derive(Debug, PartialEq, Eq)]
struct SoakOutcome {
    /// Sorted (x, k) payloads that made it through.
    out: Vec<(i64, i64)>,
    injected: u64,
    skipped: u64,
    panics: u64,
}

fn soak_run(
    ast: &NetAst,
    chaos: Option<ChaosConfig>,
    fuse: bool,
    executor: Arc<dyn Executor>,
    xs: &[(i64, i64)],
) -> SoakOutcome {
    let cfg = RunCfg {
        fault_policy: FaultPolicy::SkipRecord,
        chaos,
        ..RunCfg::default()
    };
    let net = build_full(ast, cfg, fuse, executor);
    let metrics = Arc::clone(net.metrics());
    let mut out = drive(net, xs);
    out.sort();
    SoakOutcome {
        out,
        injected: metrics.get("runtime/chaos_injected"),
        skipped: metrics.sum_matching("records_skipped"),
        panics: metrics.get("runtime/component_panics"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The chaos soak (see `fault` module docs): a seeded injector
    /// panics boxes at random inside arbitrary topologies under the
    /// `SkipRecord` policy, across {thread-per-component, pool(2)} ×
    /// {fused, unfused}. The net must never hang, every record must
    /// either come out intact or be accounted for by exactly one
    /// skip, and all four configurations must agree — the decision
    /// stream is keyed by (stage path, record index), both of which
    /// are invariant under executor choice and fusion. With chaos off
    /// the run is indistinguishable from an unguarded one.
    #[test]
    fn chaos_soak_contains_faults_identically_across_configs(
        ast in arb_net(),
        xs in proptest::collection::vec((0i64..1_000_000, 0i64..5), 0..30),
    ) {
        // CI pins SNET_CHAOS_SEED for reproducible logs; default is a
        // fixed constant so local runs are deterministic too.
        let seed: u64 = std::env::var("SNET_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xC0FFEE);
        let chaos = ChaosConfig::new(seed, 0.05);

        let configs: Vec<(&str, bool, Arc<dyn Executor>)> = vec![
            ("threads/fused", true, Arc::new(ThreadPerComponent)),
            ("threads/unfused", false, Arc::new(ThreadPerComponent)),
            ("pool2/fused", true, Arc::new(WorkStealingPool::new(2))),
            ("pool2/unfused", false, Arc::new(WorkStealingPool::new(2))),
        ];
        let mut outcomes = Vec::new();
        for (name, fuse, executor) in configs {
            let ast2 = ast.clone();
            let xs2 = xs.to_vec();
            let chaos2 = chaos.clone();
            let outcome = with_watchdog(60, move || {
                soak_run(&ast2, Some(chaos2), fuse, executor, &xs2)
            });
            // Containment accounting: every injected panic is exactly
            // one skipped record and one contained fault, and nothing
            // else goes missing.
            prop_assert_eq!(outcome.skipped, outcome.injected, "{}: {:?}", name, ast);
            prop_assert_eq!(outcome.panics, outcome.injected, "{}: {:?}", name, ast);
            prop_assert_eq!(
                outcome.out.len() as u64,
                xs.len() as u64 - outcome.skipped,
                "{}: lost records beyond the skipped ones in {:?}", name, ast
            );
            // Survivors are a sub-multiset of the inputs.
            let mut want = xs.to_vec();
            want.sort();
            let mut w = want.iter().peekable();
            for got in &outcome.out {
                while w.peek().is_some_and(|x| *x < got) { w.next(); }
                prop_assert_eq!(w.next(), Some(got), "{}: fabricated record", name);
            }
            outcomes.push((name, outcome));
        }
        // All four configurations saw the same poison records.
        for pair in outcomes.windows(2) {
            prop_assert_eq!(
                &pair[0].1, &pair[1].1,
                "configs {} and {} diverged on {:?}", pair[0].0, pair[1].0, ast
            );
        }

        // Chaos off: the guarded pipeline is a transparent wrapper —
        // nothing skipped, nothing lost, full multiset out.
        let ast2 = ast.clone();
        let xs2 = xs.to_vec();
        let clean = with_watchdog(60, move || {
            soak_run(&ast2, None, true, Arc::new(ThreadPerComponent), &xs2)
        });
        prop_assert_eq!(clean.injected, 0);
        prop_assert_eq!(clean.skipped, 0);
        prop_assert_eq!(clean.panics, 0);
        let mut want = xs.clone();
        want.sort();
        prop_assert_eq!(clean.out, want);
    }
}

// ---------------------------------------------------------------------------
// Credit accounting on a single edge, against a reference model.
// ---------------------------------------------------------------------------

/// One random operation against a bounded channel.
#[derive(Clone, Debug)]
enum Op {
    /// Gated producer path (`try_feed`): must succeed exactly when the
    /// model says in-flight < capacity.
    TryFeed,
    /// Ungated producer path (plain `send`, the sort/control
    /// exemption): always succeeds, counted but never gated.
    SendUngated,
    /// Consumer pop: releases one credit when something is queued.
    Pop,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![Just(Op::TryFeed), Just(Op::SendUngated), Just(Op::Pop)],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The credit invariant: at every step, granted − consumed equals
    /// the channel's in-flight depth, `try_feed` admits exactly while
    /// in-flight < capacity, and *gated* traffic alone never pushes
    /// depth past the capacity (ungated sends may — by design).
    #[test]
    fn credit_accounting_matches_reference_model(
        cap in 1usize..8,
        ops in arb_ops(),
    ) {
        use snet_runtime::stream::chan::{channel_cfg, TryFeedError};

        let (tx, rx) = channel_cfg::<u64>(cap, None);
        let mut granted = 0u64;   // records admitted (gated + ungated)
        let mut consumed = 0u64;  // records popped
        let mut sent_ungated = false;
        for op in &ops {
            match op {
                Op::TryFeed => {
                    let in_flight = granted - consumed;
                    match tx.try_feed(granted) {
                        Ok(()) => {
                            prop_assert!(
                                in_flight < cap as u64,
                                "try_feed admitted at depth {} >= cap {}", in_flight, cap
                            );
                            granted += 1;
                        }
                        Err(TryFeedError::Full(_)) => {
                            prop_assert!(
                                in_flight >= cap as u64,
                                "try_feed refused at depth {} < cap {}", in_flight, cap
                            );
                        }
                        Err(TryFeedError::Disconnected(_)) => unreachable!(),
                    }
                }
                Op::SendUngated => {
                    tx.send(granted).unwrap();
                    granted += 1;
                    sent_ungated = true;
                }
                Op::Pop => {
                    if rx.try_recv().is_ok() {
                        consumed += 1;
                    } else {
                        prop_assert_eq!(granted, consumed, "empty channel with credits out");
                    }
                }
            }
            // The invariant proper: depth tracks granted − consumed
            // exactly — no credit is ever leaked or double-released.
            prop_assert_eq!(rx.depth() as u64, granted - consumed);
            if !sent_ungated {
                prop_assert!(rx.depth() <= cap, "gated-only traffic exceeded cap");
            }
        }
        // Drain: every remaining credit comes back.
        while rx.try_recv().is_ok() {
            consumed += 1;
        }
        prop_assert_eq!(granted, consumed);
        prop_assert_eq!(rx.depth(), 0);
    }
}
