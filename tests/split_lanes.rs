//! Bounded lane namespace for indexed-split routing paths
//! (`NetBuilder::split_lanes`): a 10k-distinct-tag workload must not
//! grow the process-wide path interner past the lane bound — the
//! `runtime/interner_paths` gauge plateaus.
//!
//! This file intentionally holds a single test: it asserts an *upper
//! bound* on a process-wide counter, so it must not race other tests
//! interning paths in the same process (each integration-test file is
//! its own process).

use snet_runtime::NetBuilder;
use snet_types::Record;
use std::collections::HashMap;

const LANES: u32 = 8;

fn lane_net() -> snet_runtime::Net {
    NetBuilder::from_source(
        "box id (x, <lanek>) -> (x, <lanek>);\n\
         net main = id !! <lanek>;",
    )
    .unwrap()
    .bind("id", |r, e| e.emit(r.clone()))
    .split_lanes(LANES)
    .build("main")
    .unwrap()
}

#[test]
fn interner_paths_plateau_under_unbounded_tag_domain() {
    // Warm phase: enough distinct tag values to populate every lane
    // (8 lanes, 200 values — the chance of an empty lane is
    // negligible, and the assertion below does not depend on it).
    let net = lane_net();
    let mut outputs: HashMap<i64, i64> = HashMap::new();
    for k in 0..200i64 {
        net.send(Record::build().field("x", k).tag("lanek", k).finish())
            .unwrap();
    }
    for _ in 0..200 {
        let r = net.recv().expect("identity net echoes every record");
        outputs.insert(
            r.field("x").unwrap().as_int().unwrap(),
            r.tag("lanek").unwrap(),
        );
    }
    let lanes_used = net.metrics().sum_matching("branches");
    assert!(
        lanes_used <= u64::from(LANES),
        "lane namespace exceeded the bound: {lanes_used} > {LANES}"
    );
    let plateau = snet_runtime::path::interned_paths();

    // Stress phase: ~10k *fresh* distinct tag values. Without the
    // lane bound each would intern a new branch path (plus the
    // replica's component paths under it); with it, every path
    // already exists — the interner must not grow at all.
    let n_distinct = 10_000i64;
    for k in 200..200 + n_distinct {
        net.send(Record::build().field("x", k).tag("lanek", k).finish())
            .unwrap();
    }
    let out = net.finish();
    assert_eq!(out.len(), n_distinct as usize);
    assert_eq!(
        snet_runtime::path::interned_paths(),
        plateau,
        "interner grew under a bounded lane namespace"
    );

    // Semantics: the routing tag flow-inherits through (it is in the
    // box input here, echoed), values intact.
    for (x, k) in outputs {
        assert_eq!(x, k, "record payload corrupted by lane routing");
    }
}
