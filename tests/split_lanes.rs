//! Bounded lane namespace for indexed-split routing paths
//! (`NetBuilder::split_lanes`): a 10k-distinct-tag workload must not
//! grow the process-wide path interner past the lane bound — the
//! `runtime/interner_paths` gauge plateaus.
//!
//! The interner test asserts an *upper bound* on a process-wide
//! counter, so every test in this file that spawns a net (interning
//! paths) serialises on [`INTERNER`]; other integration-test files
//! are separate processes and cannot interfere.

use snet_runtime::NetBuilder;
use snet_types::Record;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

const LANES: u32 = 8;

static INTERNER: Mutex<()> = Mutex::new(());

fn serialize_interner() -> MutexGuard<'static, ()> {
    INTERNER.lock().unwrap_or_else(|e| e.into_inner())
}

fn lane_net() -> snet_runtime::Net {
    NetBuilder::from_source(
        "box id (x, <lanek>) -> (x, <lanek>);\n\
         net main = id !! <lanek>;",
    )
    .unwrap()
    .bind("id", |r, e| e.emit(r.clone()))
    .split_lanes(LANES)
    .build("main")
    .unwrap()
}

#[test]
fn interner_paths_plateau_under_unbounded_tag_domain() {
    let _serial = serialize_interner();
    // Warm phase: enough distinct tag values to populate every lane
    // (8 lanes, 200 values — the chance of an empty lane is
    // negligible, and the assertion below does not depend on it).
    let net = lane_net();
    let mut outputs: HashMap<i64, i64> = HashMap::new();
    for k in 0..200i64 {
        net.send(Record::build().field("x", k).tag("lanek", k).finish())
            .unwrap();
    }
    for _ in 0..200 {
        let r = net.recv().expect("identity net echoes every record");
        outputs.insert(
            r.field("x").unwrap().as_int().unwrap(),
            r.tag("lanek").unwrap(),
        );
    }
    let lanes_used = net.metrics().sum_matching("branches");
    assert!(
        lanes_used <= u64::from(LANES),
        "lane namespace exceeded the bound: {lanes_used} > {LANES}"
    );
    let plateau = snet_runtime::path::interned_paths();

    // Stress phase: ~10k *fresh* distinct tag values. Without the
    // lane bound each would intern a new branch path (plus the
    // replica's component paths under it); with it, every path
    // already exists — the interner must not grow at all.
    let n_distinct = 10_000i64;
    for k in 200..200 + n_distinct {
        net.send(Record::build().field("x", k).tag("lanek", k).finish())
            .unwrap();
    }
    let out = net.finish();
    assert_eq!(out.len(), n_distinct as usize);
    assert_eq!(
        snet_runtime::path::interned_paths(),
        plateau,
        "interner grew under a bounded lane namespace"
    );

    // Semantics: the routing tag flow-inherits through (it is in the
    // box input here, echoed), values intact.
    for (x, k) in outputs {
        assert_eq!(x, k, "record payload corrupted by lane routing");
    }
}

/// Replica fusion interns zero paths of its own: the fused-fan
/// driver derives the exact component paths the unfused topology
/// interns (combinator, branch/lane, per-stage, merge edge) and
/// nothing else. Once the unfused replicator has run, re-running the
/// same net fan-fused must leave the process-wide interner — and the
/// net's `runtime/interner_paths` gauge — exactly at the plateau.
#[test]
fn replica_fusion_adds_zero_interner_paths() {
    let _serial = serialize_interner();
    let drive = |fan: bool| -> u64 {
        let net = NetBuilder::from_source(
            "box id (x, <lanek>) -> (x, <lanek>);\n\
             net main = id !! <lanek>;",
        )
        .unwrap()
        .bind("id", |r, e| e.emit(r.clone()))
        .split_lanes(LANES)
        .fuse_fan(fan)
        .build("main")
        .unwrap();
        let metrics = std::sync::Arc::clone(net.metrics());
        for k in 0..200i64 {
            net.send(Record::build().field("x", k).tag("lanek", k).finish())
                .unwrap();
        }
        assert_eq!(net.finish().len(), 200);
        metrics.get("runtime/interner_paths")
    };
    // Plateau with the unfused dispatcher → lane → merger paths.
    drive(false);
    let plateau = snet_runtime::path::interned_paths();
    let gauge = drive(true);
    assert_eq!(
        snet_runtime::path::interned_paths(),
        plateau,
        "replica fusion interned paths beyond the unfused topology"
    );
    assert_eq!(gauge, plateau as u64, "gauge disagrees with the interner");
}

/// Per-replicator lane bounds (`NetBuilder::split_lanes_for`): two
/// replicators routing on different tags, the net-global lane count
/// for one and a tighter per-tag override for the other. The
/// `branches` gauge of each replicator must respect *its own* bound.
#[test]
fn per_tag_lane_bound_overrides_net_global() {
    let _serial = serialize_interner();
    const GLOBAL: u32 = 16;
    const FOR_B: u32 = 4;
    let net = NetBuilder::from_source(
        "box ida (x, <a>) -> (x, <a>);
         box idb (y, <b>) -> (y, <b>);
         net main = (ida !! <a>) | (idb !! <b>);",
    )
    .unwrap()
    .bind("ida", |r, e| e.emit(r.clone()))
    .bind("idb", |r, e| e.emit(r.clone()))
    .split_lanes(GLOBAL)
    .split_lanes_for("b", FOR_B)
    .build("main")
    .unwrap();

    // 100 distinct routing values per replicator: enough to hit every
    // lane of both namespaces many times over.
    for k in 0..100i64 {
        net.send(Record::build().field("x", k).tag("a", k).finish())
            .unwrap();
        net.send(Record::build().field("y", k).tag("b", k).finish())
            .unwrap();
    }
    let metrics = std::sync::Arc::clone(net.metrics());
    let out = net.finish();
    assert_eq!(out.len(), 200);

    let snap = metrics.snapshot();
    let lanes = |side: &str| -> u64 {
        snap.iter()
            .filter(|(k, _)| k.ends_with("/branches") && k.contains(side))
            .map(|(_, v)| *v)
            .sum()
    };
    let (a_lanes, b_lanes) = (lanes("/L/"), lanes("/R/"));
    assert!(
        a_lanes > u64::from(FOR_B) && a_lanes <= u64::from(GLOBAL),
        "tag-a replicator used {a_lanes} lanes, expected ({FOR_B}, {GLOBAL}]"
    );
    assert!(
        (1..=u64::from(FOR_B)).contains(&b_lanes),
        "tag-b replicator used {b_lanes} lanes past its override {FOR_B}"
    );
}
