//! Conformance suite for Section 4 of the paper: every normative
//! statement about the S-Net language, checked end-to-end through the
//! public API (parse → infer → run).

use snet_runtime::NetBuilder;
use snet_types::{Record, Value};

/// "box foo (a,<b>) -> (c) | (c,d,<e>)" with the paper's exact
/// snet_out calls: `snet_out(1, x)` and `snet_out(2, x, y, 42)`.
#[test]
fn snet_out_variant_interface() {
    let net = NetBuilder::from_source(
        "box foo (a, <b>) -> (c) | (c, d, <e>);
         net main = foo;",
    )
    .unwrap()
    .bind("foo", |rec, em| {
        let x = rec.field("a").unwrap().clone();
        let y = Value::Int(-7);
        // snet_out( 1, x );
        em.emit_variant(1, vec![x.clone()]);
        // snet_out( 2, x, y, 42 );
        em.emit_variant(2, vec![x, y, Value::Int(42)]);
    })
    .build("main")
    .unwrap();

    net.send(Record::build().field("a", 5i64).tag("b", 1).finish())
        .unwrap();
    let out = net.finish();
    assert_eq!(out.len(), 2);
    // First output variant: just {c}.
    assert_eq!(out[0].field("c").unwrap().as_int(), Some(5));
    assert!(out[0].field("d").is_none());
    // Second: {c, d, <e>} with <e> = 42.
    assert_eq!(out[1].field("d").unwrap().as_int(), Some(-7));
    assert_eq!(out[1].tag("e"), Some(42));
}

/// "let us assume the box foo receives a record {a,<b>,d} ... The
/// field d is attached to any output record of foo that follows the
/// first output type variant; output records produced according to the
/// second output type variant are left untouched as they already
/// feature a field d."
#[test]
fn flow_inheritance_worked_example() {
    let net = NetBuilder::from_source(
        "box foo (a, <b>) -> (c) | (c, d, <e>);
         net main = foo;",
    )
    .unwrap()
    .bind("foo", |rec, em| {
        let x = rec.field("a").unwrap().clone();
        em.emit_variant(1, vec![x.clone()]);
        em.emit_variant(2, vec![x, Value::Int(-1), Value::Int(0)]);
    })
    .build("main")
    .unwrap();

    net.send(
        Record::build()
            .field("a", 1i64)
            .tag("b", 2)
            .field("d", 99i64) // the excess field
            .finish(),
    )
    .unwrap();
    let out = net.finish();
    // Variant 1 output gains the inherited d.
    assert_eq!(out[0].field("d").unwrap().as_int(), Some(99));
    // Variant 2 output keeps its own d.
    assert_eq!(out[1].field("d").unwrap().as_int(), Some(-1));
    // The consumed tag <b> does not reappear on either.
    assert!(out[0].tag("b").is_none());
    assert!(out[1].tag("b").is_none());
}

/// "Any incoming record is directed towards the subnetwork whose input
/// type better matches the type of the record itself."
#[test]
fn best_match_routing_three_way() {
    let net = NetBuilder::from_source(
        "box one (a) -> (w);
         box two (a, b) -> (w);
         box three (a, b, c) -> (w);
         net main = one || two || three;",
    )
    .unwrap()
    .bind("one", |_r, e| {
        e.emit(Record::build().field("w", 1i64).finish())
    })
    .bind("two", |_r, e| {
        e.emit(Record::build().field("w", 2i64).finish())
    })
    .bind("three", |_r, e| {
        e.emit(Record::build().field("w", 3i64).finish())
    })
    .build("main")
    .unwrap();

    // {a} -> one; {a,b} -> two; {a,b,c} -> three; {a,b,c,x} -> three.
    for fields in [
        vec!["a"],
        vec!["a", "b"],
        vec!["a", "b", "c"],
        vec!["a", "b", "c", "x"],
    ] {
        let mut r = Record::new();
        for f in &fields {
            r.set_field(f, Value::Int(0));
        }
        net.send(r).unwrap();
    }
    let mut out: Vec<i64> = net
        .finish()
        .iter()
        .map(|r| r.field("w").unwrap().as_int().unwrap())
        .collect();
    out.sort();
    assert_eq!(out, vec![1, 2, 3, 3]);
}

/// "These four combinators preserve the SISO property, i.e., any
/// network, regardless of its complexity, can be used as an SISO
/// component." — a star inside a parallel inside a serial, all
/// composing through single streams.
#[test]
fn siso_composability() {
    let src = "
        box dec (n) -> (n) | (n, <z>);
        box tagit (m) -> (m, <z>);
        net chain = dec ** {<z>};
        net either = chain || tagit;
        net main = either .. [{<z>} -> {<z>=<z>+1}];
    ";
    let net = NetBuilder::from_source(src)
        .unwrap()
        .bind("dec", |rec, em| {
            let n = rec.field("n").unwrap().as_int().unwrap();
            if n <= 1 {
                em.emit(Record::build().field("n", 0i64).tag("z", 10).finish());
            } else {
                em.emit(Record::build().field("n", n - 1).finish());
            }
        })
        .bind("tagit", |rec, em| {
            let m = rec.field("m").unwrap().as_int().unwrap();
            em.emit(Record::build().field("m", m).tag("z", 20).finish());
        })
        .build("main")
        .unwrap();
    net.send(Record::build().field("n", 4i64).finish()).unwrap();
    net.send(Record::build().field("m", 7i64).finish()).unwrap();
    let out = net.finish();
    assert_eq!(out.len(), 2);
    let zs: Vec<i64> = {
        let mut v: Vec<i64> = out.iter().map(|r| r.tag("z").unwrap()).collect();
        v.sort();
        v
    };
    // Both paths passed the final filter, which incremented <z>.
    assert_eq!(zs, vec![11, 21]);
}

/// Tags are "accessible both on the S-Net and the SaC level": a box
/// reads a tag, computes with it, and emits a new tag value that a
/// downstream filter manipulates again.
#[test]
fn tags_cross_the_layer_boundary_both_ways() {
    let src = "
        box scale (v, <factor>) -> (v, <sum>);
        net main = scale .. [{<sum>} -> {<sum>=<sum>*2}];
    ";
    let net = NetBuilder::from_source(src)
        .unwrap()
        .bind("scale", |rec, em| {
            // SaC level: tag value drives a data-parallel computation.
            let v = rec.field("v").unwrap().as_int_array().unwrap();
            let f = rec.tag("factor").unwrap();
            let scaled = v.map(|x| x * f);
            let sum: i64 = scaled.data().iter().sum();
            em.emit(
                Record::build()
                    .field("v", Value::from(scaled))
                    .tag("sum", sum)
                    .finish(),
            );
        })
        .build("main")
        .unwrap();
    net.send(
        Record::build()
            .field(
                "v",
                Value::from(sacarray::Array::from_vec(vec![1i64, 2, 3])),
            )
            .tag("factor", 10)
            .finish(),
    )
    .unwrap();
    let out = net.finish();
    // S-Net level: (1+2+3)*10 summed by the box, doubled by the filter.
    assert_eq!(out[0].tag("sum"), Some(120));
    assert_eq!(
        out[0].field("v").unwrap().as_int_array().unwrap().data(),
        &[10, 20, 30]
    );
}
