//! The executor matrix: every determinism guarantee of the runtime,
//! verified under both component schedulers.
//!
//! The sort-record protocol encodes ordering in the *data*, so the
//! deterministic combinators must produce **byte-for-byte identical**
//! output whether components run one-per-OS-thread
//! ([`ThreadPerComponent`]) or as cooperative tasks on a
//! [`WorkStealingPool`]. The pool runs with **two workers** here — the
//! most adversarial interleaving short of fully sequential: every
//! component contends for a worker, parked components must resume
//! correctly, and the deterministic mergers' fixed drain order has to
//! hold while hundreds of tasks time-slice two threads.
//!
//! Also here: the scaling stress the executor subsystem exists for —
//! a ~1000-replica indexed split completing on a bounded worker set,
//! which thread-per-component could only serve with ~1000 OS threads.

use snet_runtime::{Executor, Net, NetBuilder, ThreadPerComponent, WorkStealingPool};
use snet_types::Record;
use std::sync::Arc;

/// The two backends under test. The pool is deliberately small.
fn executors() -> Vec<(&'static str, Arc<dyn Executor>)> {
    vec![
        ("threads", Arc::new(ThreadPerComponent) as Arc<dyn Executor>),
        ("pool(2)", Arc::new(WorkStealingPool::new(2)) as _),
    ]
}

/// `rep (x, <c>) -> (y)`: emits `x*10 + i` for `i in 0..c` — the
/// det-ordering oracle box.
fn build(expr: &str, exec: Arc<dyn Executor>) -> Net {
    let src = format!(
        "box rep (x, <c>) -> (y);
         net main = {expr};"
    );
    NetBuilder::from_source(&src)
        .unwrap()
        .bind("rep", |rec, em| {
            let x = rec.field("x").unwrap().as_int().unwrap();
            let c = rec.tag("c").unwrap();
            for i in 0..c {
                em.emit(Record::build().field("y", x * 10 + i).finish());
            }
        })
        .executor(exec)
        .build("main")
        .unwrap()
}

/// A fixed adversarial input stream: mixed lanes, mixed fan-outs
/// (including 0-output records), long enough to outlive any lucky
/// scheduling.
fn inputs() -> Vec<(i64, i64, i64)> {
    (0..120i64)
        .map(|i| (i, (i * 7 + 3) % 4, (i * 5 + 1) % 4))
        .collect()
}

fn drive(net: Net) -> Vec<i64> {
    for (x, c, k) in inputs() {
        net.send(
            Record::build()
                .field("x", x)
                .tag("c", c)
                .tag("k", k)
                .finish(),
        )
        .unwrap();
    }
    net.finish()
        .iter()
        .map(|r| r.field("y").unwrap().as_int().unwrap())
        .collect()
}

/// Record-major, emission-order oracle.
fn oracle() -> Vec<i64> {
    inputs()
        .iter()
        .flat_map(|(x, c, _)| (0..*c).map(move |i| x * 10 + i))
        .collect()
}

#[test]
fn det_combinators_match_oracle_under_both_executors() {
    for expr in ["rep | rep", "rep ! <k>", "(rep ! <k>) | (rep ! <k>)"] {
        for (name, exec) in executors() {
            let got = drive(build(expr, exec));
            assert_eq!(got, oracle(), "{expr} diverged under {name}");
        }
    }
}

#[test]
fn pool_output_is_byte_identical_to_thread_output() {
    // Not just oracle-correct: the two backends must agree with each
    // other on the full output sequence of every det topology.
    for expr in ["rep | rep", "rep ! <k>", "(rep | rep) ! <k>"] {
        let mut per_exec = Vec::new();
        for (name, exec) in executors() {
            per_exec.push((name, drive(build(expr, exec))));
        }
        let (ref_name, reference) = &per_exec[0];
        for (name, out) in &per_exec[1..] {
            assert_eq!(
                out, reference,
                "{expr}: {name} output diverged from {ref_name}"
            );
        }
    }
}

#[test]
fn nondet_topologies_conserve_records_under_pool() {
    // Random-networks-style conservation on the pool: every record
    // comes out exactly once, payloads intact, per-lane order kept.
    for expr in ["rep || rep", "rep !! <k>", "(rep !! <k>) || rep"] {
        for (name, exec) in executors() {
            let out = {
                let net = build(expr, exec);
                for (x, c, k) in inputs() {
                    net.send(
                        Record::build()
                            .field("x", x)
                            .tag("c", c)
                            .tag("k", k)
                            .finish(),
                    )
                    .unwrap();
                }
                net.finish()
            };
            let mut got: Vec<i64> = out
                .iter()
                .map(|r| r.field("y").unwrap().as_int().unwrap())
                .collect();
            let mut want = oracle();
            got.sort();
            want.sort();
            assert_eq!(got, want, "{expr} lost/duplicated records under {name}");
        }
    }
}

#[test]
fn det_star_matches_input_order_under_both_executors() {
    let src = "
        box dec (n) -> (n) | (n, <z>);
        net main = dec * {<z>};
    ";
    let depths: Vec<i64> = (0..24).map(|i| (i * 11 + 5) % 24 + 1).collect();
    for (name, exec) in executors() {
        let net = NetBuilder::from_source(src)
            .unwrap()
            .bind("dec", |rec, em| {
                let n = rec.field("n").unwrap().as_int().unwrap();
                if n <= 1 {
                    em.emit(Record::build().field("n", 0i64).tag("z", 1).finish());
                } else {
                    em.emit(Record::build().field("n", n - 1).finish());
                }
            })
            .executor(exec)
            .build("main")
            .unwrap();
        for (id, d) in depths.iter().enumerate() {
            net.send(Record::build().field("n", *d).tag("id", id as i64).finish())
                .unwrap();
        }
        let out = net.finish();
        let ids: Vec<i64> = out.iter().map(|r| r.tag("id").unwrap()).collect();
        let want: Vec<i64> = (0..depths.len() as i64).collect();
        assert_eq!(ids, want, "det star order diverged under {name}");
    }
}

#[test]
fn thousand_replica_split_completes_on_two_workers() {
    // The scaling claim: ≥1000 dynamically unfolded replicas (plus
    // dispatcher and merger) run to completion on a pool whose OS
    // thread count stays at the worker count — where
    // thread-per-component would burn one OS thread per replica.
    let pool = Arc::new(WorkStealingPool::new(2));
    let net = NetBuilder::from_source(
        "box id (x, <k>) -> (x, <k>);
         net main = id !! <k>;",
    )
    .unwrap()
    .bind("id", |rec, em| em.emit(rec.clone()))
    .executor(Arc::clone(&pool) as Arc<dyn Executor>)
    .build("main")
    .unwrap();

    const LANES: i64 = 1000;
    for round in 0..3i64 {
        for k in 0..LANES {
            net.send(
                Record::build()
                    .field("x", round * LANES + k)
                    .tag("k", k)
                    .finish(),
            )
            .unwrap();
        }
    }
    let metrics = Arc::clone(net.metrics());
    assert_eq!(net.executor().os_thread_bound(), Some(2));
    let out = net.finish();
    assert_eq!(out.len(), 3 * LANES as usize);
    // Per-lane FIFO survives the unfolding.
    for k in [0i64, 499, 999] {
        let xs: Vec<i64> = out
            .iter()
            .filter(|r| r.tag("k") == Some(k))
            .map(|r| r.field("x").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(xs, vec![k, LANES + k, 2 * LANES + k], "lane {k} order");
    }
    // ≥1000 replicas unfolded (components, not threads)...
    assert_eq!(metrics.sum_matching("branches"), LANES as u64);
    assert_eq!(metrics.sum_matching("box:id/spawned"), LANES as u64);
    // ...on exactly two OS worker threads.
    assert_eq!(pool.workers(), 2);
}

#[test]
fn deterministic_split_stress_under_pool() {
    // Det variant at a smaller width: every record triggers a sort
    // broadcast to all live replicas, so this floods the pool with
    // wakeups while the det merger enforces global input order.
    let pool = Arc::new(WorkStealingPool::new(2));
    let net = NetBuilder::from_source(
        "box id (x, <k>) -> (x, <k>);
         net main = id ! <k>;",
    )
    .unwrap()
    .bind("id", |rec, em| em.emit(rec.clone()))
    .executor(pool as Arc<dyn Executor>)
    .build("main")
    .unwrap();
    const N: i64 = 600;
    for i in 0..N {
        net.send(Record::build().field("x", i).tag("k", i % 150).finish())
            .unwrap();
    }
    let out = net.finish();
    let xs: Vec<i64> = out
        .iter()
        .map(|r| r.field("x").unwrap().as_int().unwrap())
        .collect();
    assert_eq!(xs, (0..N).collect::<Vec<_>>());
}
