//! Allocation-freedom of the record hot path.
//!
//! PR 4's acceptance bar: records with at most 4 fields and 4 tags —
//! every workload in this tree — allocate **nothing** on clone,
//! `split_for` (plan application) and `inherit`, once the shapes and
//! plans involved are interned (interning happens once per shape for
//! the process lifetime; steady state is what the hot path runs in).
//!
//! Asserted with a counting global allocator: the test thread's
//! allocation count must not move across the measured operations.
//! This file holds its tests in one `#[test]` on purpose — the
//! counter is per-thread, so the assertions are immune to libtest's
//! other threads, but keeping one test avoids any doubt.

use snet_types::{Record, RecordType, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates to System; the bookkeeping touches only a
// const-initialized thread-local counter (no allocation, and
// `try_with` guards the TLS-teardown window).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Runs `f` and returns how many allocations the current thread made.
fn counting<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocs();
    let r = f();
    (allocs() - before, r)
}

#[test]
fn small_records_allocate_nothing_on_clone_split_inherit() {
    // Warm phase: intern every label, shape and plan the measured
    // operations will touch. Values are Int — payload clones must not
    // allocate either (Arc-backed payloads only bump a refcount, but
    // Int keeps the test independent of payload semantics).
    let rec = Record::build()
        .field("a", 1i64)
        .field("d", 4i64)
        .field("x", 7i64)
        .field("y", 8i64)
        .tag("b", 10)
        .tag("k", 2)
        .tag("m", 3)
        .tag("n", 4)
        .finish();
    assert_eq!(rec.len(), 8, "the 4-field/4-tag boundary case");
    let ty = RecordType::of(&["a", "d"], &["b", "k"]);
    let (warm_matched, warm_excess) = rec.split_for(&ty).unwrap();
    let _ = warm_matched.clone().inherit(&warm_excess);
    let _ = rec.clone().inherit(&warm_excess); // identity-plan pair
                                               // `x` overlaps the excess: the duplicate-discard rule resolves in
                                               // the compiled plan, still allocation-free.
    let out = Record::build().field("c", 9i64).field("x", 99i64).finish();
    let _ = out.clone().inherit(&warm_excess);

    // Clone: inline value storage, shared interned shape.
    let (n, cloned) = counting(|| rec.clone());
    assert_eq!(n, 0, "clone of a <=4/<=4 record allocated {n} times");
    assert_eq!(cloned, rec);

    // split_for: plan lookup (read-locked map hit) + array copies
    // into inline storage for both halves.
    let (n, halves) = counting(|| rec.split_for(&ty).unwrap());
    assert_eq!(n, 0, "split_for allocated {n} times");
    let (matched, excess) = halves;
    assert_eq!(matched.record_type(), ty);
    assert_eq!(excess.len(), 4);

    // inherit, non-identity: merge by compiled plan into inline
    // storage.
    let (n, merged) = counting(|| out.clone().inherit(&excess));
    assert_eq!(n, 0, "inherit allocated {n} times");
    assert_eq!(merged.len(), out.len() + excess.len() - 1); // own x wins
    assert_eq!(merged.field("x").unwrap().as_int(), Some(99));

    // inherit, identity fast path (excess fully shadowed).
    let (n, same) = counting(|| rec.clone().inherit(&warm_excess));
    assert_eq!(n, 0, "identity inherit allocated {n} times");
    assert_eq!(same, rec);

    // Equality short-circuits on the shape id — also allocation-free.
    let (n, eq) = counting(|| cloned == rec);
    assert_eq!(n, 0, "record equality allocated {n} times");
    assert!(eq);

    // Sanity check that the counter actually counts: a boxed value
    // must register.
    let (n, _kept) = counting(|| Box::new(123u64));
    assert!(n > 0, "counting allocator is not observing allocations");
}

#[test]
fn oversized_records_still_work_by_spilling() {
    // Past the inline bound the representation spills to the heap —
    // correctness over speed; this pins that the boundary is where
    // the docs say it is.
    let mut big = Record::new();
    for i in 0..5i64 {
        big.set_field(&format!("f{i}"), Value::Int(i));
    }
    let (n, _clone) = counting(|| big.clone());
    assert!(n > 0, "a 5-field record must spill (inline capacity is 4)");
}
