//! Surface-language integration: the figure networks as *text*,
//! pretty-print round-trips across crates, and building runnable
//! networks straight from source.

use snet_lang::{parse_net_expr, parse_program, pretty_net, pretty_program};
use snet_runtime::NetBuilder;
use snet_types::Record;

#[test]
fn figure_sources_parse_and_roundtrip() {
    for src in [
        sudoku::networks::FIG1.to_string(),
        sudoku::networks::FIG2.to_string(),
        sudoku::networks::fig3_text(4, 40),
    ] {
        let ast = parse_net_expr(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
        let printed = pretty_net(&ast);
        let reparsed = parse_net_expr(&printed)
            .unwrap_or_else(|e| panic!("pretty output unparseable: {printed}\n{e}"));
        assert_eq!(reparsed, ast, "round trip changed {src}");
    }
}

#[test]
fn full_program_pretty_roundtrip() {
    let src = format!(
        "{}\nnet fig1 = {};\nnet fig2 = {};\nnet fig3 = {};",
        sudoku::networks::BOX_DECLS,
        sudoku::networks::FIG1,
        sudoku::networks::FIG2,
        sudoku::networks::fig3_text(4, 40),
    );
    let p = parse_program(&src).unwrap();
    let printed = pretty_program(&p);
    let reparsed = parse_program(&printed).unwrap();
    assert_eq!(reparsed, p);
}

#[test]
fn comments_and_whitespace_are_insignificant() {
    let a = parse_net_expr("a .. b").unwrap();
    let b = parse_net_expr("a\n  ..   // pipeline\n b").unwrap();
    assert_eq!(a, b);
}

#[test]
fn paper_filter_text_executes() {
    // The Section 4 filter example, straight from text to execution.
    let src = "
        box src (a, b, <c>) -> (a, b, <c>);
        net main = src .. [{a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=<c>+1}];
    ";
    let net = NetBuilder::from_source(src)
        .unwrap()
        .bind("src", |r, e| e.emit(r.clone()))
        .build("main")
        .unwrap();
    net.send(
        Record::build()
            .field("a", 10i64)
            .field("b", 20i64)
            .tag("c", 5)
            .finish(),
    )
    .unwrap();
    let out = net.finish();
    assert_eq!(out.len(), 2);
    assert_eq!(out[0].field("z").unwrap().as_int(), Some(10));
    assert_eq!(out[0].tag("t"), Some(0));
    assert_eq!(out[1].field("a").unwrap().as_int(), Some(20));
    assert_eq!(out[1].tag("c"), Some(6));
}

#[test]
fn net_declarations_compose_into_larger_nets() {
    // Nets referencing nets, then used from build_expr.
    let src = "
        box inc (x) -> (x);
        net twice = inc .. inc;
        net quad = twice .. twice;
    ";
    let net = NetBuilder::from_source(src)
        .unwrap()
        .bind("inc", |r, e| {
            let x = r.field("x").unwrap().as_int().unwrap();
            e.emit(Record::build().field("x", x + 1).finish());
        })
        .build("quad")
        .unwrap();
    net.send(Record::build().field("x", 0i64).finish()).unwrap();
    let out = net.finish();
    assert_eq!(out[0].field("x").unwrap().as_int(), Some(4));
}

#[test]
fn parse_errors_identify_the_problem() {
    let e = parse_program("box foo (a) -> ;").unwrap_err();
    assert!(e.message.contains("expected"), "{e}");
    let e = parse_net_expr("a ** ").unwrap_err();
    assert!(e.to_string().contains("parse error"), "{e}");
    let e = parse_net_expr("a !! b").unwrap_err();
    assert!(e.message.contains("<tag>"), "{e}");
}

#[test]
fn filter_validation_errors_surface_from_source() {
    // A filter copying a field absent from its pattern is rejected
    // with a filter-specific message.
    let err = parse_net_expr("[{a} -> {b}]").unwrap_err();
    assert!(err.message.contains("does not occur in pattern"), "{err}");
}

#[test]
fn deterministic_variants_parse_distinctly() {
    use snet_lang::NetAst;
    let nd = parse_net_expr("a || b").unwrap();
    let d = parse_net_expr("a | b").unwrap();
    assert_ne!(nd, d);
    match (nd, d) {
        (NetAst::Parallel { det: false, .. }, NetAst::Parallel { det: true, .. }) => {}
        other => panic!("unexpected: {other:?}"),
    }
}
