//! Property tests for the S-Net type system: structural subtyping,
//! best-match scoring, flow inheritance, and signature inference on
//! the paper's own networks.

use proptest::prelude::*;
use snet_lang::parse_program;
use snet_types::{Label, MultiType, Record, RecordType, Value};

fn arb_labels() -> impl Strategy<Value = RecordType> {
    // Small universe so subset relations actually occur.
    proptest::collection::vec(0usize..8, 0..6).prop_map(|ids| {
        RecordType::new(
            ids.iter()
                .map(|i| {
                    if i % 2 == 0 {
                        Label::field(&format!("f{i}"))
                    } else {
                        Label::tag(&format!("t{i}"))
                    }
                })
                .collect(),
        )
    })
}

proptest! {
    /// t1 <: t2  ⟺  t2 ⊆ t1 (the paper's definition, Section 4).
    #[test]
    fn subtype_iff_superset(a in arb_labels(), b in arb_labels()) {
        prop_assert_eq!(a.is_subtype_of(&b), b.is_subset(&a));
    }

    /// Subtyping is reflexive and transitive.
    #[test]
    fn subtype_preorder(a in arb_labels(), b in arb_labels(), c in arb_labels()) {
        prop_assert!(a.is_subtype_of(&a));
        if a.is_subtype_of(&b) && b.is_subtype_of(&c) {
            prop_assert!(a.is_subtype_of(&c));
        }
    }

    /// The union is the meet: a ∪ b is a subtype of both a and b.
    #[test]
    fn union_is_subtype_of_both(a in arb_labels(), b in arb_labels()) {
        let u = a.union(&b);
        prop_assert!(u.is_subtype_of(&a));
        prop_assert!(u.is_subtype_of(&b));
    }

    /// Match score: defined exactly when the record type is a subtype
    /// of the input type, and equal to the input type's size.
    #[test]
    fn match_score_consistent(rec in arb_labels(), input in arb_labels()) {
        match rec.match_score(&input) {
            Some(score) => {
                prop_assert!(rec.is_subtype_of(&input));
                prop_assert_eq!(score, input.len());
            }
            None => prop_assert!(!rec.is_subtype_of(&input)),
        }
    }

    /// Multivariant subtyping quantifier structure (every variant of x
    /// has a supervariant in y).
    #[test]
    fn multitype_subtyping(
        xs in proptest::collection::vec(arb_labels(), 1..4),
        ys in proptest::collection::vec(arb_labels(), 1..4),
    ) {
        let x = MultiType::new(xs.clone());
        let y = MultiType::new(ys.clone());
        let expected = xs.iter().all(|v| ys.iter().any(|w| v.is_subtype_of(w)));
        prop_assert_eq!(x.is_subtype_of(&y), expected);
    }
}

/// Builds a record carrying exactly the given labels (field values are
/// dummies, tag values are deterministic).
fn record_of(ty: &RecordType) -> Record {
    let mut rec = Record::new();
    for l in ty.labels() {
        if l.is_field() {
            rec.set_field_label(*l, Value::Int(1));
        } else {
            rec.set_tag_label(*l, 7);
        }
    }
    rec
}

proptest! {
    /// Flow inheritance is type-safe: the result of inheriting excess
    /// into an output record is a subtype of the output's own type
    /// ("flow inheritance ... produces subtypes of the output type,
    /// which cannot violate type constraints", Section 4).
    #[test]
    fn flow_inheritance_produces_subtypes(out_ty in arb_labels(), excess_ty in arb_labels()) {
        let out = record_of(&out_ty);
        let excess = record_of(&excess_ty);
        let inherited = out.inherit(&excess);
        prop_assert!(inherited.record_type().is_subtype_of(&out_ty));
        // And it is exactly the union of the label sets.
        prop_assert_eq!(inherited.record_type(), out_ty.union(&excess_ty));
    }

    /// split_for partitions: matched ∪ excess = record, matched has
    /// exactly the input type's labels, excess is disjoint from it.
    #[test]
    fn split_for_partitions(rec_ty in arb_labels(), input in arb_labels()) {
        let rec = record_of(&rec_ty);
        match rec.split_for(&input) {
            Some((matched, excess)) => {
                prop_assert!(input.is_subset(&rec_ty));
                prop_assert_eq!(matched.record_type(), input.clone());
                prop_assert_eq!(
                    excess.record_type(),
                    rec_ty.difference(&input)
                );
            }
            None => prop_assert!(!input.is_subset(&rec_ty)),
        }
    }

    /// Present labels win over inherited ones: inheriting never
    /// changes an existing value.
    #[test]
    fn inheritance_never_overwrites(ty in arb_labels()) {
        let rec = record_of(&ty);
        let mut conflicting = Record::new();
        for l in ty.labels() {
            if l.is_field() {
                conflicting.set_field_label(*l, Value::Int(999));
            } else {
                conflicting.set_tag_label(*l, 999);
            }
        }
        let out = rec.clone().inherit(&conflicting);
        prop_assert_eq!(out, rec);
    }
}

// ---------------------------------------------------------------------------
// Inference on the paper's declarations.
// ---------------------------------------------------------------------------

#[test]
fn paper_box_signature_types_as_expected() {
    let p = parse_program("box foo (a, <b>) -> (c) | (c, d, <e>);").unwrap();
    let env = p.env().unwrap();
    let sig = env.lookup_sig("foo").unwrap();
    assert_eq!(sig.input_type().to_string(), "{a,<b>}");
    assert_eq!(sig.output_type().to_string(), "{c} | {c,d,<e>}");
}

#[test]
fn figure_networks_infer_types() {
    let src = format!(
        "{}\nnet fig1 = {};\nnet fig2 = {};\nnet fig3 = {};",
        sudoku::networks::BOX_DECLS,
        sudoku::networks::FIG1,
        sudoku::networks::FIG2,
        sudoku::networks::fig3_text(4, 40),
    );
    let p = parse_program(&src).unwrap();
    let env = p.env().unwrap();

    let fig1 = env.lookup_sig("fig1").unwrap();
    // Fig. 1 consumes {board} and produces the done variant.
    assert!(fig1
        .input_type()
        .variants()
        .iter()
        .any(|v| v.to_string() == "{board}"));
    assert!(fig1
        .output_type()
        .variants()
        .iter()
        .any(|v| v.contains(Label::tag("done"))));

    let fig2 = env.lookup_sig("fig2").unwrap();
    assert!(fig2
        .output_type()
        .variants()
        .iter()
        .any(|v| v.contains(Label::tag("done"))));

    let fig3 = env.lookup_sig("fig3").unwrap();
    // Fig. 3's output keeps board and opts (the tail solve box).
    assert!(fig3
        .output_type()
        .variants()
        .iter()
        .any(|v| v.contains(Label::field("board")) && v.contains(Label::field("opts"))));
}

#[test]
fn ill_typed_network_is_rejected() {
    // solveOneLevel needs opts, but computeOpts is missing from the
    // chain and `solve` consumed them... simplest: a consumer of a
    // label the producer consumed.
    let src = "
        box p (a) -> (b);
        box q (a) -> (c);
        net bad = p .. q;
    ";
    let p = parse_program(src).unwrap();
    assert!(p.env().is_err(), "q's need for `a` cannot be satisfied");
}

#[test]
fn requirement_propagation_enriches_net_input() {
    // The downstream box needs {a, extra}; upstream passes a through.
    // Inference must surface `extra` as a requirement on the whole
    // net's input rather than rejecting the composition.
    let src = "
        box pass (a) -> (a);
        box needy (a, extra) -> (z);
        net n = pass .. needy;
    ";
    let env = parse_program(src).unwrap().env().unwrap();
    let sig = env.lookup_sig("n").unwrap();
    let input = &sig.maps[0].input;
    assert!(input.contains(Label::field("a")));
    assert!(input.contains(Label::field("extra")));
}
