//! Integration coverage for the handle-based metrics registry
//! (PR 1 tentpole): handle reads and legacy string-keyed queries must
//! agree on a nested network — a pipeline inside a serial replicator
//! inside an indexed parallel replicator — and the matching queries
//! must observe counters that components register *after* the network
//! has started (replicators spawn components dynamically).

use snet_runtime::NetBuilder;
use snet_types::Record;

/// `((id .. dec) ** {<done>}) !! <k>`: pipeline inside star inside
/// split. A record `{n, <k>}` traverses `n` replicas of the pipeline
/// in lane `k`, then exits tagged `<done>`.
fn nested_net() -> snet_runtime::Net {
    NetBuilder::from_source(
        "box id (n) -> (n);\n\
         box dec (n) -> (n) | (n, <done>);\n\
         net main = ((id .. dec) ** {<done>}) !! <k>;",
    )
    .unwrap()
    .bind("id", |r, e| e.emit(r.clone()))
    .bind("dec", |r, e| {
        let n = r.field("n").unwrap().as_int().unwrap() - 1;
        if n <= 0 {
            e.emit(Record::build().field("n", 0i64).tag("done", 1).finish());
        } else {
            e.emit(Record::build().field("n", n).finish());
        }
    })
    .build("main")
    .unwrap()
}

fn rec(n: i64, k: i64) -> Record {
    Record::build().field("n", n).tag("k", k).finish()
}

#[test]
fn handle_and_string_views_agree_on_nested_network() {
    let net = nested_net();
    for i in 0..30i64 {
        net.send(rec(1 + i % 5, i % 3)).unwrap();
    }
    let metrics = std::sync::Arc::clone(net.metrics());
    let out = net.finish();
    assert_eq!(out.len(), 30);

    // Every record passes the dispatcher exactly once.
    assert_eq!(metrics.sum_matching("splitnd/records_in"), 30);
    // Three lanes unfolded (k in 0..3).
    assert_eq!(metrics.sum_matching("/branches"), 3);
    // Every record leaves through some guard's exit tap exactly once.
    assert_eq!(metrics.sum_matching("/exits"), 30);
    // The pipeline is 1:1, so both boxes see identical record totals.
    assert_eq!(
        metrics.sum_matching("box:id/records_in"),
        metrics.sum_matching("box:dec/records_in"),
    );
    // id emits everything it receives.
    assert_eq!(
        metrics.sum_matching("box:id/records_in"),
        metrics.sum_matching("box:id/records_out"),
    );

    // The snapshot, per-key gets, and fresh handles are three views of
    // the same cells: they must agree key for key — this is the
    // "handle totals equal legacy string totals" contract.
    let snap = metrics.snapshot();
    assert!(!snap.is_empty());
    for (key, value) in &snap {
        assert_eq!(metrics.get(key), *value, "get() disagrees for {key}");
        assert_eq!(
            metrics.handle(key).get(),
            *value,
            "handle() disagrees for {key}"
        );
    }
    // sum_matching over everything equals summing the snapshot.
    let total: u64 = snap.values().sum();
    assert_eq!(metrics.sum_matching(""), total);
}

#[test]
fn matching_queries_see_counters_registered_after_start() {
    let net = nested_net();
    let metrics = std::sync::Arc::clone(net.metrics());

    // Shallow record in lane 0: unfolds one replica of one lane.
    net.send(rec(1, 0)).unwrap();
    assert!(net.recv().is_some());
    let lanes_before = metrics.count_matching("branch");
    let dec_counters_before = metrics.count_matching("box:dec/records_in");
    assert!(dec_counters_before >= 1);

    // Deep record in a NEW lane: the replicator spawns a fresh branch
    // and the star unfolds more stages — all registering counters well
    // after the network started. The string queries must see them.
    net.send(rec(6, 1)).unwrap();
    assert!(net.recv().is_some());
    let lanes_after = metrics.count_matching("branch");
    let dec_counters_after = metrics.count_matching("box:dec/records_in");
    assert!(
        lanes_after > lanes_before,
        "new lane's counters invisible to count_matching ({lanes_before} -> {lanes_after})"
    );
    assert!(
        dec_counters_after > dec_counters_before,
        "dynamically spawned stage counters invisible \
         ({dec_counters_before} -> {dec_counters_after})"
    );
    // And the totals keep adding up across the dynamic registrations.
    assert_eq!(metrics.sum_matching("splitnd/records_in"), 2);
    assert_eq!(metrics.sum_matching("/exits"), 2);

    let out = net.finish();
    assert!(out.is_empty());
}

#[test]
fn repeated_instantiation_accumulates_under_identical_keys() {
    // Spawning the same program twice yields metric registries with
    // identical key sets (paths are interned deterministically), so
    // dashboards/baselines can diff runs key-by-key.
    let run = |records: i64| {
        let net = nested_net();
        for i in 0..records {
            net.send(rec(2, i % 2)).unwrap();
        }
        let metrics = std::sync::Arc::clone(net.metrics());
        let _ = net.finish();
        metrics.snapshot()
    };
    let a = run(4);
    let b = run(4);
    let keys_a: Vec<&String> = a.keys().collect();
    let keys_b: Vec<&String> = b.keys().collect();
    assert_eq!(keys_a, keys_b);
    // `stream_depth` is a high-water gauge: how far a queue grows
    // before its consumer drains it is scheduling-dependent (visible
    // under SNET_STREAM_BOUND, where every edge maintains it), so the
    // gauges are exempt from run-to-run value equality.
    let values = |snap: &std::collections::BTreeMap<String, u64>| {
        snap.iter()
            .filter(|(k, _)| !k.ends_with("stream_depth"))
            .map(|(k, v)| (k.clone(), *v))
            .collect::<Vec<_>>()
    };
    assert_eq!(values(&a), values(&b));
}
