//! Property tests for the deterministic combinator variants.
//!
//! The defining property of `|`, `*`, `!` (paper, Section 4): output
//! order is a *function of input order*, independent of scheduling.
//! For boxes with deterministic emission we can therefore state an
//! exact oracle — the outputs of record 1 (in emission order), then
//! record 2's, and so on — and check it over random streams. The
//! non-deterministic variants only guarantee multiset equality, which
//! is checked alongside.

use proptest::prelude::*;
use snet_runtime::{Net, NetBuilder};
use snet_types::Record;

/// An input: value, copy count (emission fan-out), routing lane.
#[derive(Clone, Debug)]
struct In {
    x: i64,
    copies: i64,
    lane: i64,
}

fn arb_inputs() -> impl Strategy<Value = Vec<In>> {
    proptest::collection::vec(
        (0i64..1000, 0i64..4, 0i64..4).prop_map(|(x, copies, lane)| In { x, copies, lane }),
        0..24,
    )
}

/// `rep (x, <c>) -> (y)`: emits `x*10 + i` for `i in 0..c` — a
/// deterministic multi-output box.
fn build(expr: &str) -> Net {
    let src = format!(
        "box rep (x, <c>) -> (y);
         net main = {expr};"
    );
    NetBuilder::from_source(&src)
        .unwrap()
        .bind("rep", |rec, em| {
            let x = rec.field("x").unwrap().as_int().unwrap();
            let c = rec.tag("c").unwrap();
            for i in 0..c {
                em.emit(Record::build().field("y", x * 10 + i).finish());
            }
        })
        .build("main")
        .unwrap()
}

fn drive(net: Net, inputs: &[In]) -> Vec<i64> {
    for r in inputs {
        net.send(
            Record::build()
                .field("x", r.x)
                .tag("c", r.copies)
                .tag("k", r.lane)
                .finish(),
        )
        .unwrap();
    }
    net.finish()
        .iter()
        .map(|r| r.field("y").unwrap().as_int().unwrap())
        .collect()
}

/// The oracle: record-major, emission-order outputs.
fn oracle(inputs: &[In]) -> Vec<i64> {
    inputs
        .iter()
        .flat_map(|r| (0..r.copies).map(move |i| r.x * 10 + i))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Deterministic parallel composition: exact input order, whichever
    /// branch each record was routed to.
    #[test]
    fn det_parallel_matches_oracle(inputs in arb_inputs()) {
        let got = drive(build("rep | rep"), &inputs);
        prop_assert_eq!(got, oracle(&inputs));
    }

    /// Deterministic indexed replication: exact input order across
    /// dynamically created replicas.
    #[test]
    fn det_split_matches_oracle(inputs in arb_inputs()) {
        let got = drive(build("rep ! <k>"), &inputs);
        prop_assert_eq!(got, oracle(&inputs));
    }

    /// Nested: a det split inside a det parallel still reproduces
    /// global input order end-to-end.
    #[test]
    fn nested_det_matches_oracle(inputs in arb_inputs()) {
        let got = drive(build("(rep ! <k>) | (rep ! <k>)"), &inputs);
        prop_assert_eq!(got, oracle(&inputs));
    }

    /// Non-deterministic variants: same multiset, any order; per-lane
    /// order is preserved by the split.
    #[test]
    fn nondet_split_multiset_and_lane_order(inputs in arb_inputs()) {
        let net = build("rep !! <k>");
        // Need the lane on the output to group: rep consumes x,<c> so
        // <k> flow-inherits.
        for r in &inputs {
            net.send(
                Record::build()
                    .field("x", r.x)
                    .tag("c", r.copies)
                    .tag("k", r.lane)
                    .finish(),
            )
            .unwrap();
        }
        let out = net.finish();
        // Multiset equality.
        let mut got: Vec<i64> = out
            .iter()
            .map(|r| r.field("y").unwrap().as_int().unwrap())
            .collect();
        let mut want = oracle(&inputs);
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
        // Per-lane order.
        for lane in 0..4i64 {
            let lane_got: Vec<i64> = out
                .iter()
                .filter(|r| r.tag("k") == Some(lane))
                .map(|r| r.field("y").unwrap().as_int().unwrap())
                .collect();
            let lane_want: Vec<i64> = inputs
                .iter()
                .filter(|r| r.lane == lane)
                .flat_map(|r| (0..r.copies).map(move |i| r.x * 10 + i))
                .collect();
            prop_assert_eq!(lane_got, lane_want, "lane {} order violated", lane);
        }
    }
}

// Deterministic star: countdown chains of random depth; output must
// follow input order exactly even though deep records take much
// longer to emerge.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn det_star_matches_input_order(depths in proptest::collection::vec(1i64..24, 1..12)) {
        let src = "
            box dec (n) -> (n) | (n, <z>);
            net main = dec * {<z>};
        ";
        let net = NetBuilder::from_source(src)
            .unwrap()
            .bind("dec", |rec, em| {
                let n = rec.field("n").unwrap().as_int().unwrap();
                if n <= 1 {
                    em.emit(Record::build().field("n", 0i64).tag("z", 1).finish());
                } else {
                    em.emit(Record::build().field("n", n - 1).finish());
                }
            })
            .build("main")
            .unwrap();
        for (id, d) in depths.iter().enumerate() {
            net.send(
                Record::build().field("n", *d).tag("id", id as i64).finish(),
            )
            .unwrap();
        }
        let out = net.finish();
        let ids: Vec<i64> = out.iter().map(|r| r.tag("id").unwrap()).collect();
        let want: Vec<i64> = (0..depths.len() as i64).collect();
        prop_assert_eq!(ids, want);
    }
}
