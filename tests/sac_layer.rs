//! Integration and property tests for the SaC computation layer,
//! including the paper-level invariant that data-parallel evaluation
//! is observably identical to sequential evaluation ("completely
//! implicit and thus avoids all the usual pitfalls of concurrent
//! programming", Section 1).

use proptest::prelude::*;
use sacarray::{ops, Array, Eval, Generator, Pool, WithLoop};
use sudoku::{add_number, compute_opts, Board, Opts};

fn arb_region(extent: usize) -> impl Strategy<Value = (usize, usize)> {
    (0..extent).prop_flat_map(move |lo| (Just(lo), lo..=extent))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel genarray == sequential genarray, for arbitrary
    /// overlapping generator pairs over a matrix.
    #[test]
    fn par_eq_seq_genarray(
        (r1lo, r1hi) in arb_region(48),
        (c1lo, c1hi) in arb_region(160),
        (r2lo, r2hi) in arb_region(48),
        (c2lo, c2hi) in arb_region(160),
    ) {
        let pool = Pool::new(4);
        let make = |eval| {
            WithLoop::new()
                .gen(
                    Generator::range(vec![r1lo, c1lo], vec![r1hi, c1hi]).unwrap(),
                    |iv| (iv[0] * 1000 + iv[1]) as i64,
                )
                .gen(
                    Generator::range(vec![r2lo, c2lo], vec![r2hi, c2hi]).unwrap(),
                    |iv| -((iv[0] + iv[1]) as i64),
                )
                .genarray_on(&pool, eval, [48, 160], 0i64)
                .unwrap()
        };
        prop_assert_eq!(make(Eval::Sequential), make(Eval::Auto));
    }

    /// Parallel fold == sequential fold over arbitrary regions.
    #[test]
    fn par_eq_seq_fold((rlo, rhi) in arb_region(300), (clo, chi) in arb_region(300)) {
        let pool = Pool::new(4);
        let run = |eval| {
            WithLoop::new()
                .gen(
                    Generator::range(vec![rlo, clo], vec![rhi, chi]).unwrap(),
                    |iv| (iv[0] * 31 + iv[1] * 7) as i64,
                )
                .fold_on(&pool, eval, 0, |a, b| a + b)
        };
        prop_assert_eq!(run(Eval::Sequential), run(Eval::Auto));
    }

    /// Overlap semantics: the later generator wins, regardless of
    /// evaluation strategy.
    #[test]
    fn later_generator_wins((lo1, hi1) in arb_region(64), (lo2, hi2) in arb_region(64)) {
        let a = WithLoop::new()
            .gen_const(Generator::range(vec![lo1], vec![hi1]).unwrap(), 1)
            .gen_const(Generator::range(vec![lo2], vec![hi2]).unwrap(), 2)
            .genarray_seq([64], 0)
            .unwrap();
        for (i, &v) in a.data().iter().enumerate() {
            let in1 = i >= lo1 && i < hi1;
            let in2 = i >= lo2 && i < hi2;
            let expected = if in2 { 2 } else if in1 { 1 } else { 0 };
            prop_assert_eq!(v, expected, "at index {}", i);
        }
    }

    /// concat is associative and take/drop invert it.
    #[test]
    fn concat_take_drop_laws(
        a in proptest::collection::vec(any::<i32>(), 0..20),
        b in proptest::collection::vec(any::<i32>(), 0..20),
        c in proptest::collection::vec(any::<i32>(), 0..20),
    ) {
        let (av, bv, cv) = (
            Array::from_vec(a.clone()),
            Array::from_vec(b.clone()),
            Array::from_vec(c),
        );
        let left = ops::concat(&ops::concat(&av, &bv).unwrap(), &cv).unwrap();
        let right = ops::concat(&av, &ops::concat(&bv, &cv).unwrap()).unwrap();
        prop_assert_eq!(left, right);
        let ab = ops::concat(&av, &bv).unwrap();
        prop_assert_eq!(ops::take(a.len(), &ab).unwrap(), av);
        prop_assert_eq!(ops::drop(a.len(), &ab).unwrap(), bv);
    }
}

// ---------------------------------------------------------------------------
// addNumber invariants (the Section 3 kernel).
// ---------------------------------------------------------------------------

fn arb_cell() -> impl Strategy<Value = (usize, usize, i64)> {
    (0usize..9, 0usize..9, 1i64..=9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After addNumber(i, j, k): the position has no options; k is
    /// impossible anywhere in row i, column j and the sub-board;
    /// everything else is untouched.
    #[test]
    fn add_number_eliminates_exactly_the_three_rules((i, j, k) in arb_cell()) {
        let board = Board::empty(3);
        let opts = Opts::all_true(3);
        let (b2, o2) = add_number(i, j, k, &board, &opts);
        prop_assert_eq!(b2.get(i, j), k);
        for r in 0..9usize {
            for c in 0..9usize {
                for v in 1..=9i64 {
                    let expect_gone = (r == i && c == j)
                        || (v == k
                            && (r == i
                                || c == j
                                || (r / 3 == i / 3 && c / 3 == j / 3)));
                    prop_assert_eq!(
                        o2.allows(r, c, v),
                        !expect_gone,
                        "option ({},{},{}) wrong after addNumber({},{},{})",
                        r, c, v, i, j, k
                    );
                }
            }
        }
    }

    /// addNumber commutes for non-conflicting placements.
    #[test]
    fn add_number_commutes((i1, j1, k1) in arb_cell(), (i2, j2, k2) in arb_cell()) {
        // Skip conflicting pairs (same cell, or same number in a shared
        // group — ordering would matter for the board content then).
        prop_assume!(!(i1 == i2 && j1 == j2));
        let board = Board::empty(3);
        let opts = Opts::all_true(3);
        let (ba, oa) = add_number(i1, j1, k1, &board, &opts);
        let (ba, oa) = add_number(i2, j2, k2, &ba, &oa);
        let (bb, ob) = add_number(i2, j2, k2, &board, &opts);
        let (bb, ob) = add_number(i1, j1, k1, &bb, &ob);
        prop_assert_eq!(ba, bb);
        prop_assert_eq!(oa.array(), ob.array());
    }
}

#[test]
fn compute_opts_agrees_with_incremental_solving() {
    // Solving step by step must keep opts consistent with recomputing
    // from scratch.
    let puzzle = sudoku::puzzles::classic9();
    let (board, opts) = compute_opts(&puzzle);
    // Recompute from the board we just built: identical.
    let (board2, opts2) = compute_opts(&board);
    assert_eq!(board, board2);
    assert_eq!(opts.array(), opts2.array());
}

#[test]
fn withloop_scales_on_multiple_threads() {
    // Not a benchmark — just a sanity check that the pool actually
    // engages and produces the right answer on a large array.
    let pool = Pool::new(4);
    let n = 2_000_000usize;
    let a = WithLoop::new()
        .gen(Generator::range(vec![0], vec![n]).unwrap(), |iv| {
            iv[0] as i64
        })
        .genarray_on(&pool, Eval::Auto, [n], 0i64)
        .unwrap();
    let total = WithLoop::new()
        .gen(Generator::full(a.shape()), |iv| *a.at(iv))
        .fold_on(&pool, Eval::Auto, 0, |x, y| x + y);
    assert_eq!(total, (n as i64 - 1) * n as i64 / 2);
}

#[test]
fn paper_section2_examples_all_hold() {
    // The complete set of Section 2 worked examples, end to end.
    let e1 = WithLoop::new()
        .gen_const(Generator::range(vec![0, 0], vec![3, 5]).unwrap(), 42)
        .genarray([3, 5], 0)
        .unwrap();
    assert!(e1.data().iter().all(|&x| x == 42));

    let e2 = WithLoop::new()
        .gen(Generator::range(vec![0], vec![5]).unwrap(), |iv| {
            iv[0] as i32
        })
        .genarray([5], 0)
        .unwrap();
    assert_eq!(e2.data(), &[0, 1, 2, 3, 4]);

    let e3 = WithLoop::new()
        .gen_const(Generator::range(vec![1], vec![4]).unwrap(), 42)
        .genarray([5], 0)
        .unwrap();
    assert_eq!(e3.data(), &[0, 42, 42, 42, 0]);

    let e4 = WithLoop::new()
        .gen_const(Generator::range(vec![1], vec![4]).unwrap(), 1)
        .gen_const(Generator::range(vec![3], vec![5]).unwrap(), 2)
        .genarray([6], 0)
        .unwrap();
    assert_eq!(e4.data(), &[0, 1, 1, 2, 2, 0]);

    let e5 = WithLoop::new()
        .gen_const(Generator::range(vec![0], vec![3]).unwrap(), 3)
        .modarray(&e4)
        .unwrap();
    assert_eq!(e5.data(), &[3, 3, 3, 2, 2, 0]);

    // The (++) example.
    let a = Array::from_vec(vec![1, 2, 3]);
    let b = Array::from_vec(vec![4, 5]);
    assert_eq!(ops::concat(&a, &b).unwrap().data(), &[1, 2, 3, 4, 5]);
}
