//! The serve layer's correlation contract, across the executor ×
//! fusion matrix.
//!
//! What PR 7's front door promises: every response reaches exactly
//! the caller whose request produced it — out of order across a
//! nondet merge, several records per request, a hundred-plus
//! concurrent callers on one net — and the reserved `#rid` tag that
//! makes it work is neither forgeable nor observable from outside.
//! Ingress overload (`Shed`/`Timeout`) surfaces as typed errors at
//! the `Service::call` boundary, and deterministic combinators keep
//! their byte-identity guarantee behind the front door.

use snet_runtime::{
    CallError, CallOpts, Executor, Net, NetBuilder, OverloadPolicy, SendRejected, Service,
    ThreadPerComponent, WorkStealingPool,
};
use snet_types::{Label, Record};
use std::future::Future;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The {threads, pool(2)} × {fused, unfused} matrix every correlation
/// scenario runs under. Executors are built fresh per leg (a pool is
/// tied to the nets spawned on it).
fn matrix() -> Vec<(String, Arc<dyn Executor>, bool)> {
    let mut legs: Vec<(String, Arc<dyn Executor>, bool)> = Vec::new();
    for fuse in [true, false] {
        legs.push((
            format!("threads/fuse={fuse}"),
            Arc::new(ThreadPerComponent) as Arc<dyn Executor>,
            fuse,
        ));
        legs.push((
            format!("pool(2)/fuse={fuse}"),
            Arc::new(WorkStealingPool::new(2)) as Arc<dyn Executor>,
            fuse,
        ));
    }
    legs
}

/// `slow (a) -> (r)` sleeps; `fast (b) -> (r)` doesn't. Type-routed
/// nondet parallel: completions cross each other on the output edge.
/// Replica fusion would run both branches inline in arrival order
/// (a valid nondet interleaving, but no crossing), so this test pins
/// the concurrent-branch topology with the escape hatch.
fn slow_fast_net(exec: Arc<dyn Executor>, fuse: bool) -> Net {
    NetBuilder::from_source(
        "box slow (a) -> (r);
         box fast (b) -> (r);
         net main = slow || fast;",
    )
    .unwrap()
    .fuse_fan(false)
    .bind("slow", |rec, em| {
        std::thread::sleep(Duration::from_millis(60));
        let a = rec.field("a").unwrap().as_int().unwrap();
        em.emit(Record::build().field("r", a).finish());
    })
    .bind("fast", |rec, em| {
        let b = rec.field("b").unwrap().as_int().unwrap();
        em.emit(Record::build().field("r", b).finish());
    })
    .executor(exec)
    .fuse(fuse)
    .build("main")
    .unwrap()
}

#[test]
fn out_of_order_completions_across_nondet_merge() {
    for (leg, exec, fuse) in matrix() {
        let svc = Service::start(slow_fast_net(exec, fuse));
        let slow = svc
            .call(Record::build().field("a", 111i64).finish())
            .unwrap();
        let fast = svc
            .call(Record::build().field("b", 222i64).finish())
            .unwrap();
        // The fast response overtakes the slow one on the shared
        // output edge; each must still land in its own slot.
        let fast_resp = fast.wait().unwrap();
        let slow_resp = slow.wait().unwrap();
        assert_eq!(
            fast_resp.records[0].field("r").unwrap().as_int(),
            Some(222),
            "{leg}: fast response must carry the fast request's payload"
        );
        assert_eq!(
            slow_resp.records[0].field("r").unwrap().as_int(),
            Some(111),
            "{leg}: slow response must carry the slow request's payload"
        );
        assert!(
            fast_resp.completed_at <= slow_resp.completed_at,
            "{leg}: completions crossed on the wire"
        );
        svc.shutdown();
    }
}

#[test]
fn multi_record_responses_resolve_once_complete() {
    for (leg, exec, fuse) in matrix() {
        let net = NetBuilder::from_source(
            "box fan (x) -> (y);
             net main = fan;",
        )
        .unwrap()
        .bind("fan", |rec, em| {
            let x = rec.field("x").unwrap().as_int().unwrap();
            for i in 0..3 {
                em.emit(Record::build().field("y", x * 10 + i).finish());
            }
        })
        .executor(exec)
        .fuse(fuse)
        .build("main")
        .unwrap();
        let svc = Service::start(net);
        let handles: Vec<_> = (0..20i64)
            .map(|x| {
                svc.call_with(
                    Record::build().field("x", x).finish(),
                    CallOpts {
                        expect: 3,
                        policy: None,
                    },
                )
                .unwrap()
            })
            .collect();
        for (x, h) in handles.into_iter().enumerate() {
            let resp = h.wait().unwrap();
            let ys: Vec<i64> = resp
                .records
                .iter()
                .map(|r| r.field("y").unwrap().as_int().unwrap())
                .collect();
            let x = x as i64;
            assert_eq!(
                ys,
                vec![x * 10, x * 10 + 1, x * 10 + 2],
                "{leg}: all three records of request {x}, in emission order"
            );
        }
        svc.shutdown();
    }
}

#[test]
fn hundred_plus_concurrent_callers_each_get_their_own_response() {
    for (leg, exec, fuse) in matrix() {
        let net = NetBuilder::from_source(
            "box echo (x) -> (x);
             net main = echo;",
        )
        .unwrap()
        .bind("echo", |rec, em| em.emit(rec.clone()))
        .executor(exec)
        .fuse(fuse)
        .build("main")
        .unwrap();
        let svc = Service::start(net);
        std::thread::scope(|s| {
            let svc = &svc;
            let callers: Vec<_> = (0..128i64)
                .map(|k| {
                    s.spawn(move || {
                        let resp = svc
                            .call(Record::build().field("x", k).finish())
                            .unwrap()
                            .wait()
                            .unwrap();
                        resp.records[0].field("x").unwrap().as_int().unwrap()
                    })
                })
                .collect();
            for (k, c) in callers.into_iter().enumerate() {
                assert_eq!(
                    c.join().unwrap(),
                    k as i64,
                    "{leg}: caller {k} got another caller's response"
                );
            }
        });
        svc.shutdown();
    }
}

/// A net whose single box parks on a gate until released: ingress
/// bound 1 fills deterministically, so `Shed` and `Timeout` rejections
/// are observable at the call surface without racing the box.
#[test]
fn shed_and_timeout_surface_at_call() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let gate = Arc::new(AtomicBool::new(false));
    let started = Arc::new(AtomicBool::new(false));
    let (gate_box, started_box) = (Arc::clone(&gate), Arc::clone(&started));
    let net = NetBuilder::from_source(
        "box slow (x) -> (y);
         net main = slow;",
    )
    .unwrap()
    .bind("slow", move |rec, em| {
        started_box.store(true, Ordering::Release);
        while !gate_box.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let x = rec.field("x").unwrap().as_int().unwrap();
        em.emit(Record::build().field("y", x).finish());
    })
    .bound_for("ingress", 1)
    .build("main")
    .unwrap();
    let svc = Service::start(net);
    let shed = CallOpts {
        expect: 1,
        policy: Some(OverloadPolicy::Shed),
    };
    // Fill deterministically: request A is popped by the box (popping
    // returns the ingress credit) which then parks on the gate; once
    // `started` is up the box cannot pop again, so request B occupies
    // the capacity-1 ingress for good and request C must shed.
    let mut accepted = Vec::new();
    let a = svc
        .call_with(Record::build().field("x", 0i64).finish(), shed)
        .expect("A fits an empty ingress");
    accepted.push((0i64, a));
    while !started.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(1));
    }
    let b = svc
        .call_with(Record::build().field("x", 1i64).finish(), shed)
        .expect("B fits: the box drained A before parking");
    accepted.push((1i64, b));
    match svc.call_with(Record::build().field("x", 2i64).finish(), shed) {
        Err(CallError::Rejected(SendRejected::Overloaded)) => {}
        other => panic!("expected shed on the full ingress, got {other:?}"),
    }
    // A timeout call against the still-full ingress gives up with the
    // typed Timeout rejection.
    let t0 = Instant::now();
    match svc.call_with(
        Record::build().field("x", 99i64).finish(),
        CallOpts {
            expect: 1,
            policy: Some(OverloadPolicy::Timeout(Duration::from_millis(30))),
        },
    ) {
        Err(CallError::Rejected(SendRejected::Timeout)) => {}
        other => panic!("expected Timeout rejection, got {other:?}"),
    }
    assert!(
        t0.elapsed() >= Duration::from_millis(25),
        "timeout returned early"
    );
    // Release the box: everything accepted completes, correlated.
    gate.store(true, std::sync::atomic::Ordering::Release);
    for (i, h) in accepted {
        let resp = h.wait().unwrap();
        assert_eq!(resp.records[0].field("y").unwrap().as_int(), Some(i));
    }
    svc.shutdown();
}

/// Deterministic combinators behind the front door: per-request
/// response sequences are byte-identical across every executor ×
/// fusion leg, even with 8 callers racing.
#[test]
fn det_byte_identity_per_request_across_matrix() {
    let run_leg = |exec: Arc<dyn Executor>, fuse: bool| -> Vec<Vec<i64>> {
        let net = NetBuilder::from_source(
            "box rep (x, <c>) -> (y);
             box sink (y) -> (y);
             net main = ((rep | rep) ! <k>) .. sink;",
        )
        .unwrap()
        .bind("rep", |rec, em| {
            let x = rec.field("x").unwrap().as_int().unwrap();
            let c = rec.tag("c").unwrap();
            for i in 0..c {
                em.emit(Record::build().field("y", x * 10 + i).finish());
            }
        })
        .bind("sink", |r, e| e.emit(r.clone()))
        .executor(exec)
        .fuse(fuse)
        .build("main")
        .unwrap();
        let svc = Service::start(net);
        const N: usize = 200;
        let mut out: Vec<Vec<i64>> = vec![Vec::new(); N];
        std::thread::scope(|s| {
            let svc = &svc;
            let threads: Vec<_> = (0..8usize)
                .map(|t| {
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        let mut i = t;
                        while i < N {
                            let c = 1 + (i as i64) % 3;
                            let h = svc
                                .call_with(
                                    Record::build()
                                        .field("x", i as i64)
                                        .tag("c", c)
                                        .tag("k", (i as i64) % 5)
                                        .finish(),
                                    CallOpts {
                                        expect: c as usize,
                                        policy: None,
                                    },
                                )
                                .unwrap();
                            mine.push((i, h));
                            i += 8;
                        }
                        mine.into_iter()
                            .map(|(i, h)| {
                                let ys = h
                                    .wait()
                                    .unwrap()
                                    .records
                                    .iter()
                                    .map(|r| r.field("y").unwrap().as_int().unwrap())
                                    .collect::<Vec<_>>();
                                (i, ys)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for t in threads {
                for (i, ys) in t.join().unwrap() {
                    out[i] = ys;
                }
            }
        });
        svc.shutdown();
        out
    };

    let reference = run_leg(Arc::new(ThreadPerComponent), true);
    for (i, ys) in reference.iter().enumerate() {
        let want: Vec<i64> = (0..1 + (i as i64) % 3)
            .map(|j| (i as i64) * 10 + j)
            .collect();
        assert_eq!(ys, &want, "request {i}: det emission order");
    }
    for (leg, exec, fuse) in matrix() {
        let got = run_leg(exec, fuse);
        assert_eq!(
            got, reference,
            "{leg}: det byte-identity behind the front door"
        );
    }
}

/// 10k requests, 8 concurrent callers, zero lost or misrouted — the
/// acceptance criterion as a test (closed-loop so it stays fast in
/// CI; the open-loop variant lives in `serve_bench`).
#[test]
fn ten_thousand_requests_fully_correlated() {
    let net = NetBuilder::from_source(
        "box echo (x) -> (x);
         net main = echo;",
    )
    .unwrap()
    .bind("echo", |rec, em| em.emit(rec.clone()))
    .build("main")
    .unwrap();
    let svc = Service::start(net);
    const TOTAL: usize = 10_000;
    std::thread::scope(|s| {
        let svc = &svc;
        let threads: Vec<_> = (0..8usize)
            .map(|t| {
                s.spawn(move || {
                    let mut i = t;
                    while i < TOTAL {
                        let resp = svc
                            .call(Record::build().field("x", i as i64).finish())
                            .unwrap()
                            .wait()
                            .unwrap();
                        assert_eq!(
                            resp.records[0].field("x").unwrap().as_int(),
                            Some(i as i64),
                            "response {i} misrouted"
                        );
                        i += 8;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    });
    let m = Arc::clone(svc.metrics());
    svc.shutdown();
    assert_eq!(m.get("serve/requests"), TOTAL as u64);
    assert_eq!(m.get("serve/completed"), TOTAL as u64);
    assert_eq!(m.get("serve/stray"), 0);
}

/// Sequential callers recycle completion slots: after the first call
/// resolves and its handle drops, the demux-parked slot serves the
/// next request instead of a fresh allocation.
#[test]
fn sequential_calls_reuse_completion_slots() {
    let net = NetBuilder::from_source(
        "box echo (x) -> (x);
         net main = echo;",
    )
    .unwrap()
    .bind("echo", |rec, em| em.emit(rec.clone()))
    .build("main")
    .unwrap();
    let svc = Service::start(net);
    const N: i64 = 50;
    for i in 0..N {
        let resp = svc
            .call(Record::build().field("x", i).finish())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.records[0].field("x").unwrap().as_int(), Some(i));
    }
    let m = Arc::clone(svc.metrics());
    svc.shutdown();
    let reused = m.get("serve/slot_reuse");
    assert!(
        reused > 0,
        "strictly sequential calls never hit the slot free list"
    );
    assert!(reused < N as u64, "more reuses than calls");
    assert_eq!(m.get("serve/completed"), N as u64);
}

#[test]
fn reserved_tag_cannot_be_forged_or_observed() {
    let net = NetBuilder::from_source(
        "box echo (x) -> (x);
         net main = echo;",
    )
    .unwrap()
    .bind("echo", |rec, em| {
        // The box sees no reserved label: flow inheritance split it
        // off before this closure ran.
        assert!(
            !rec.labels().any(|l| l.name().starts_with('#')),
            "box must never observe a reserved label"
        );
        em.emit(rec.clone())
    })
    .build("main")
    .unwrap();
    let svc = Service::start(net);
    // Forging: a record already carrying #rid (as tag or field) is
    // rejected before it reaches the net.
    let mut forged = Record::build().field("x", 1i64).finish();
    forged.set_tag("#rid", 7);
    assert!(matches!(svc.call(forged), Err(CallError::ReservedTag)));
    // Type mismatches still surface as the boundary error, not a hang.
    assert!(matches!(
        svc.call(Record::build().field("nope", 1i64).finish()),
        Err(CallError::Rejected(SendRejected::TypeMismatch { .. }))
    ));
    // Observing: the response carries no reserved label.
    let resp = svc
        .call(Record::build().field("x", 42i64).finish())
        .unwrap()
        .wait()
        .unwrap();
    assert!(!resp.records[0].has(Label::tag("#rid")));
    assert!(!resp.records[0].labels().any(|l| l.name().starts_with('#')));
    svc.shutdown();
}

/// Requests the net never answers: a deadline abandons them with the
/// typed error, and shutdown fails whatever is still pending.
#[test]
fn unanswered_requests_fail_typed_not_hang() {
    let net = NetBuilder::from_source(
        "box blackhole (x) -> (y);
         net main = blackhole;",
    )
    .unwrap()
    .bind("blackhole", |_rec, _em| {})
    .build("main")
    .unwrap();
    let svc = Service::start(net);
    let h = svc.call(Record::build().field("x", 1i64).finish()).unwrap();
    match h.wait_deadline(Instant::now() + Duration::from_millis(50)) {
        Err(CallError::Deadline) => {}
        other => panic!("expected Deadline, got {other:?}"),
    }
    let pending = svc.call(Record::build().field("x", 2i64).finish()).unwrap();
    let waiter = std::thread::spawn(move || pending.wait());
    svc.shutdown();
    match waiter.join().unwrap() {
        Err(CallError::ServiceStopped) => {}
        other => panic!("expected ServiceStopped, got {other:?}"),
    }
}

/// The `CallHandle` future surface: polling resolves without a
/// blocking wait (a minimal hand-rolled executor drives it).
#[test]
fn call_handle_is_a_future() {
    use std::sync::mpsc;
    use std::task::{Context, Poll, Wake, Waker};

    struct Notify(mpsc::Sender<()>);
    impl Wake for Notify {
        fn wake(self: Arc<Self>) {
            let _ = self.0.send(());
        }
    }

    let net = NetBuilder::from_source(
        "box echo (x) -> (x);
         net main = echo;",
    )
    .unwrap()
    .bind("echo", |rec, em| {
        std::thread::sleep(Duration::from_millis(20));
        em.emit(rec.clone())
    })
    .build("main")
    .unwrap();
    let svc = Service::start(net);
    let mut h = Box::pin(svc.call(Record::build().field("x", 5i64).finish()).unwrap());
    let (tx, rx) = mpsc::channel();
    let waker = Waker::from(Arc::new(Notify(tx)));
    let mut cx = Context::from_waker(&waker);
    let resp = loop {
        match h.as_mut().poll(&mut cx) {
            Poll::Ready(r) => break r.unwrap(),
            Poll::Pending => rx.recv_timeout(Duration::from_secs(5)).expect("woken"),
        }
    };
    assert_eq!(resp.records[0].field("x").unwrap().as_int(), Some(5));
    svc.shutdown();
}
