//! Fusion equivalence: the fused and unfused instantiations of the
//! same plan must be observationally identical — byte-identical
//! (deterministically ordered) output, identical per-stage metrics
//! paths and counts — under every executor. Only the component count
//! may differ: an n-stage fused chain runs as **one** component.
//!
//! `NetBuilder::fuse(bool)` drives both topologies in-process; the
//! `SNET_FUSE=0` CI leg additionally re-runs the whole suite with the
//! process default flipped.

use snet_runtime::{Executor, Net, NetBuilder, ThreadPerComponent, WorkStealingPool};
use snet_types::Record;
use std::sync::Arc;

/// The executor matrix of the ISSUE: threads, pool, pool+1.
fn executors() -> Vec<(&'static str, Arc<dyn Executor>)> {
    vec![
        ("threads", Arc::new(ThreadPerComponent) as Arc<dyn Executor>),
        ("pool", Arc::new(WorkStealingPool::new(2)) as _),
        ("pool+1", Arc::new(WorkStealingPool::new(1)) as _),
    ]
}

/// Boxes for every topology under test:
/// * `inc` — 1:1, type-preserving;
/// * `rep` — multi-emission: `x*10 + i` for `i in 0..c` (0 included,
///   so some records vanish);
/// * `dec` — star step: counts `n` down, exits tagged `<z>`.
const SRC: &str = "
    box inc (x) -> (x);
    box rep (x, <c>) -> (x, <c>);
    box dec (n) -> (n) | (n, <z>);
";

fn build(expr: &str, exec: Arc<dyn Executor>, fuse: bool) -> Net {
    NetBuilder::from_source(&format!("{SRC}\nnet main = {expr};"))
        .unwrap()
        .bind("inc", |r, e| {
            let x = r.field("x").unwrap().as_int().unwrap();
            e.emit(Record::build().field("x", x + 1).finish());
        })
        .bind("rep", |r, e| {
            let x = r.field("x").unwrap().as_int().unwrap();
            let c = r.tag("c").unwrap();
            for i in 0..c {
                e.emit(Record::build().field("x", x * 10 + i).tag("c", c).finish());
            }
        })
        .bind("dec", |r, e| {
            let n = r.field("n").unwrap().as_int().unwrap();
            if n <= 1 {
                e.emit(Record::build().field("n", 0i64).tag("z", 1).finish());
            } else {
                e.emit(Record::build().field("n", n - 1).finish());
            }
        })
        .executor(exec)
        .fuse(fuse)
        .build("main")
        .unwrap()
}

/// Renders the full output stream for byte-for-byte comparison.
fn drive_x(net: Net, n: i64) -> Vec<String> {
    for i in 0..n {
        net.send(
            Record::build()
                .field("x", i)
                .tag("c", (i * 7 + 3) % 4)
                .tag("k", (i * 5 + 1) % 3)
                .finish(),
        )
        .unwrap();
    }
    net.finish().iter().map(|r| format!("{r:?}")).collect()
}

/// Deterministically ordered topologies (pure chains and det
/// combinators) whose output must be **byte-identical** fused vs
/// unfused, per executor.
const DET_EXPRS: &[&str] = &[
    // Pure chains, 1:1 and multi-emission.
    "inc .. inc .. inc .. inc",
    "rep .. rep",
    "inc .. rep .. inc .. rep",
    // Filters inside the chain.
    "inc .. [{x} -> {y=x}] .. [{y} -> {x=y, <t>=1}] .. inc",
    // Fusion barrier: a det split interrupts the chain — the runs on
    // either side fuse separately, ordering still global.
    "inc .. inc .. (rep ! <k>) .. inc .. inc",
    // Det parallel of two fusable chains.
    "(inc .. inc) | (rep .. inc)",
    // Fused chain inside a det combinator scope (sort records must
    // traverse the fused component byte-identically).
    "(inc .. inc .. rep) ! <k>",
];

#[test]
fn fused_output_is_byte_identical_to_unfused_across_executors() {
    for expr in DET_EXPRS {
        let reference = drive_x(build(expr, Arc::new(ThreadPerComponent), false), 60);
        for (name, exec) in executors() {
            for fuse in [true, false] {
                let got = drive_x(build(expr, Arc::clone(&exec), fuse), 60);
                assert_eq!(got, reference, "{expr} diverged under {name} (fuse={fuse})");
            }
        }
    }
}

#[test]
fn nondet_barrier_conserves_records_fused_and_unfused() {
    // The non-det replicator barrier: global output order is
    // scheduler-dependent, so compare the multiset (and rely on the
    // det exprs above for ordering).
    let expr = "inc .. inc .. (rep !! <k>) .. inc .. inc";
    let mut reference = drive_x(build(expr, Arc::new(ThreadPerComponent), false), 60);
    reference.sort();
    for (name, exec) in executors() {
        for fuse in [true, false] {
            let mut got = drive_x(build(expr, Arc::clone(&exec), fuse), 60);
            got.sort();
            assert_eq!(
                got, reference,
                "{expr} lost/duplicated records under {name} (fuse={fuse})"
            );
        }
    }
}

#[test]
fn det_star_with_fused_inner_keeps_input_order() {
    // (dec .. dec) * {<z>}: the star's inner pipeline fuses; det
    // star output must stay in input order, identical to unfused.
    let run = |fuse: bool, exec: Arc<dyn Executor>| -> Vec<String> {
        let net = NetBuilder::from_source(&format!("{SRC}\nnet main = (dec .. dec) * {{<z>}};"))
            .unwrap()
            .bind("dec", |r, e| {
                let n = r.field("n").unwrap().as_int().unwrap();
                if n <= 1 {
                    e.emit(Record::build().field("n", 0i64).tag("z", 1).finish());
                } else {
                    e.emit(Record::build().field("n", n - 1).finish());
                }
            })
            .bind("inc", |r, e| e.emit(r.clone()))
            .bind("rep", |r, e| e.emit(r.clone()))
            .executor(exec)
            .fuse(fuse)
            .build("main")
            .unwrap();
        for (id, d) in (0..20i64).map(|i| (i, (i * 13 + 7) % 9 + 1)) {
            net.send(Record::build().field("n", d).tag("id", id).finish())
                .unwrap();
        }
        net.finish().iter().map(|r| format!("{r:?}")).collect()
    };
    let reference = run(false, Arc::new(ThreadPerComponent));
    for (name, exec) in executors() {
        for fuse in [true, false] {
            assert_eq!(
                run(fuse, Arc::clone(&exec)),
                reference,
                "det star diverged under {name} (fuse={fuse})"
            );
        }
    }
}

#[test]
fn fused_chain_runs_as_one_component() {
    // The point of fusion: n stages, one scheduled component.
    let fused = build(
        "inc .. inc .. inc .. inc",
        Arc::new(ThreadPerComponent),
        true,
    );
    let unfused = build(
        "inc .. inc .. inc .. inc",
        Arc::new(ThreadPerComponent),
        false,
    );
    assert_eq!(fused.threads_spawned(), 1);
    assert_eq!(unfused.threads_spawned(), 4);
    let _ = fused.finish();
    let _ = unfused.finish();
}

#[test]
fn barrier_chains_fuse_only_the_runs() {
    // inc .. inc .. (rep !! <k>) .. inc .. inc: two fused runs around
    // the replicator. Components before any record flows: 2 fused
    // chains + dispatcher + merger (replicas unfold on demand).
    let net = build(
        "inc .. inc .. (rep !! <k>) .. inc .. inc",
        Arc::new(ThreadPerComponent),
        true,
    );
    assert_eq!(net.threads_spawned(), 4);
    let _ = net.finish();
}

#[test]
fn per_stage_metrics_paths_survive_fusion() {
    // The string query API cannot tell the topologies apart: every
    // per-stage counter lives at the same path with the same value.
    let run = |fuse: bool| {
        let net = build(
            "inc .. [{x} -> {y=x}] .. [{y} -> {x=y}] .. inc",
            Arc::new(ThreadPerComponent),
            fuse,
        );
        for i in 0..10i64 {
            net.send(Record::build().field("x", i).finish()).unwrap();
        }
        let metrics = Arc::clone(net.metrics());
        let out = net.finish();
        assert_eq!(out.len(), 10);
        metrics.snapshot()
    };
    let fused = run(true);
    let unfused = run(false);
    let stage_keys = |snap: &std::collections::BTreeMap<String, u64>| {
        snap.iter()
            .filter(|(k, _)| k.contains("box:") || k.contains("filter"))
            // Per-EDGE gauges (stream_depth / credit_stalls, present
            // when SNET_STREAM_BOUND is set) are excluded: fusion
            // removes the inter-stage edges by design, so only the
            // per-stage computation counters must match.
            .filter(|(k, _)| !k.ends_with("/stream_depth") && !k.ends_with("/credit_stalls"))
            .map(|(k, v)| (k.clone(), *v))
            .collect::<Vec<_>>()
    };
    assert_eq!(stage_keys(&fused), stage_keys(&unfused));
    // And the chain is 1:1, so every stage saw all 10 records at its
    // exact Serial-derived path.
    for (k, v) in &fused {
        if k.contains("records_in") && (k.contains("box:") || k.contains("filter")) {
            assert_eq!(*v, 10, "{k}");
        }
    }
    assert!(fused.keys().any(|k| k.contains("box:inc")));
    assert!(fused.keys().any(|k| k.contains("filter")));
}

#[test]
fn observers_see_per_stage_events_in_fused_chains() {
    use parking_lot::Mutex;
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let log2 = Arc::clone(&log);
    let net = NetBuilder::from_source(&format!("{SRC}\nnet main = inc .. inc;"))
        .unwrap()
        .bind("inc", |r, e| {
            let x = r.field("x").unwrap().as_int().unwrap();
            e.emit(Record::build().field("x", x + 1).finish());
        })
        .bind("rep", |r, e| e.emit(r.clone()))
        .bind("dec", |r, e| e.emit(r.clone()))
        .observe(Arc::new(move |path, dir, _rec| {
            log2.lock().push(format!("{path}:{dir:?}"));
        }))
        .fuse(true)
        .build("main")
        .unwrap();
    assert_eq!(net.threads_spawned(), 1);
    net.send(Record::build().field("x", 0i64).finish()).unwrap();
    let _ = net.finish();
    let log = log.lock();
    // Both stages observed, distinct paths, both directions.
    for stage in ["s0", "s1"] {
        for dir in ["In", "Out"] {
            assert!(
                log.iter()
                    .any(|e| e.contains(stage) && e.contains("box:inc") && e.ends_with(dir)),
                "missing {stage} {dir} in {log:?}"
            );
        }
    }
}

#[test]
fn snet_fuse_env_controls_the_default() {
    // Whichever way the process-wide default points (the SNET_FUSE=0
    // CI leg flips it), the builder override wins both ways and the
    // unforced build follows the env.
    let default_fused = snet_runtime::fuse_default();
    let net = NetBuilder::from_source(&format!("{SRC}\nnet main = inc .. inc;"))
        .unwrap()
        .bind("inc", |r, e| e.emit(r.clone()))
        .bind("rep", |r, e| e.emit(r.clone()))
        .bind("dec", |r, e| e.emit(r.clone()))
        .build("main")
        .unwrap();
    assert_eq!(net.threads_spawned(), if default_fused { 1 } else { 2 });
    let _ = net.finish();
}
