//! Fusion equivalence: the fused and unfused instantiations of the
//! same plan must be observationally identical — byte-identical
//! (deterministically ordered) output, identical per-stage metrics
//! paths and counts — under every executor. Only the component count
//! may differ: an n-stage fused chain runs as **one** component.
//!
//! `NetBuilder::fuse(bool)` drives both topologies in-process; the
//! `SNET_FUSE=0` CI leg additionally re-runs the whole suite with the
//! process default flipped.

use snet_runtime::{
    ChaosConfig, Executor, FaultPolicy, Net, NetBuilder, ThreadPerComponent, WorkStealingPool,
};
use snet_types::Record;
use std::sync::Arc;

/// The executor matrix of the ISSUE: threads, pool, pool+1.
fn executors() -> Vec<(&'static str, Arc<dyn Executor>)> {
    vec![
        ("threads", Arc::new(ThreadPerComponent) as Arc<dyn Executor>),
        ("pool", Arc::new(WorkStealingPool::new(2)) as _),
        ("pool+1", Arc::new(WorkStealingPool::new(1)) as _),
    ]
}

/// Boxes for every topology under test:
/// * `inc` — 1:1, type-preserving;
/// * `rep` — multi-emission: `x*10 + i` for `i in 0..c` (0 included,
///   so some records vanish);
/// * `dec` — star step: counts `n` down, exits tagged `<z>`.
const SRC: &str = "
    box inc (x) -> (x);
    box rep (x, <c>) -> (x, <c>);
    box dec (n) -> (n) | (n, <z>);
";

/// A builder for `expr` with every box bound — the shared base for
/// the fuse / fuse_fan / fault-policy variations below.
fn fan_builder(expr: &str) -> NetBuilder {
    NetBuilder::from_source(&format!("{SRC}\nnet main = {expr};"))
        .unwrap()
        .bind("inc", |r, e| {
            let x = r.field("x").unwrap().as_int().unwrap();
            e.emit(Record::build().field("x", x + 1).finish());
        })
        .bind("rep", |r, e| {
            let x = r.field("x").unwrap().as_int().unwrap();
            let c = r.tag("c").unwrap();
            for i in 0..c {
                e.emit(Record::build().field("x", x * 10 + i).tag("c", c).finish());
            }
        })
        .bind("dec", |r, e| {
            let n = r.field("n").unwrap().as_int().unwrap();
            if n <= 1 {
                e.emit(Record::build().field("n", 0i64).tag("z", 1).finish());
            } else {
                e.emit(Record::build().field("n", n - 1).finish());
            }
        })
}

fn build(expr: &str, exec: Arc<dyn Executor>, fuse: bool) -> Net {
    fan_builder(expr)
        .executor(exec)
        .fuse(fuse)
        .build("main")
        .unwrap()
}

/// Renders the full output stream for byte-for-byte comparison.
fn drive_x(net: Net, n: i64) -> Vec<String> {
    for i in 0..n {
        net.send(
            Record::build()
                .field("x", i)
                .tag("c", (i * 7 + 3) % 4)
                .tag("k", (i * 5 + 1) % 3)
                .finish(),
        )
        .unwrap();
    }
    net.finish().iter().map(|r| format!("{r:?}")).collect()
}

/// Deterministically ordered topologies (pure chains and det
/// combinators) whose output must be **byte-identical** fused vs
/// unfused, per executor.
const DET_EXPRS: &[&str] = &[
    // Pure chains, 1:1 and multi-emission.
    "inc .. inc .. inc .. inc",
    "rep .. rep",
    "inc .. rep .. inc .. rep",
    // Filters inside the chain.
    "inc .. [{x} -> {y=x}] .. [{y} -> {x=y, <t>=1}] .. inc",
    // Fusion barrier: a det split interrupts the chain — the runs on
    // either side fuse separately, ordering still global.
    "inc .. inc .. (rep ! <k>) .. inc .. inc",
    // Det parallel of two fusable chains.
    "(inc .. inc) | (rep .. inc)",
    // Fused chain inside a det combinator scope (sort records must
    // traverse the fused component byte-identically).
    "(inc .. inc .. rep) ! <k>",
];

/// Like [`drive_x`] but with a second routing tag so nested
/// replicators (`! <k2>` inside `! <k>`) have something to route on.
fn drive_fan(net: Net, n: i64) -> Vec<String> {
    for i in 0..n {
        net.send(
            Record::build()
                .field("x", i)
                .tag("c", (i * 7 + 3) % 4)
                .tag("k", (i * 5 + 1) % 3)
                .tag("k2", (i * 3 + 2) % 2)
                .finish(),
        )
        .unwrap();
    }
    net.finish().iter().map(|r| format!("{r:?}")).collect()
}

#[test]
fn fused_fan_matrix_is_byte_identical() {
    // The ISSUE's fused-fan matrix: det split, det parallel, and a
    // nested fan-in-fan, each driven across {threads, pool(1),
    // pool(2)} × {fan fused, fan unfused} with chain fusion on.
    // Output must be byte-identical to the fully unfused reference.
    let exprs = [
        "(inc .. inc .. rep) ! <k>",
        "(inc .. inc) | (rep .. inc)",
        "((inc .. rep) ! <k2>) ! <k>",
    ];
    for expr in exprs {
        let reference = drive_fan(
            fan_builder(expr)
                .executor(Arc::new(ThreadPerComponent))
                .fuse(false)
                .build("main")
                .unwrap(),
            60,
        );
        for (name, exec) in executors() {
            for fan in [true, false] {
                let got = drive_fan(
                    fan_builder(expr)
                        .executor(Arc::clone(&exec))
                        .fuse(true)
                        .fuse_fan(fan)
                        .build("main")
                        .unwrap(),
                    60,
                );
                assert_eq!(
                    got, reference,
                    "{expr} diverged under {name} (fuse_fan={fan})"
                );
            }
        }
    }
}

#[test]
fn fused_output_is_byte_identical_to_unfused_across_executors() {
    for expr in DET_EXPRS {
        let reference = drive_x(build(expr, Arc::new(ThreadPerComponent), false), 60);
        for (name, exec) in executors() {
            for fuse in [true, false] {
                let got = drive_x(build(expr, Arc::clone(&exec), fuse), 60);
                assert_eq!(got, reference, "{expr} diverged under {name} (fuse={fuse})");
            }
        }
    }
}

#[test]
fn nondet_barrier_conserves_records_fused_and_unfused() {
    // The non-det replicator barrier: global output order is
    // scheduler-dependent, so compare the multiset (and rely on the
    // det exprs above for ordering).
    let expr = "inc .. inc .. (rep !! <k>) .. inc .. inc";
    let mut reference = drive_x(build(expr, Arc::new(ThreadPerComponent), false), 60);
    reference.sort();
    for (name, exec) in executors() {
        for fuse in [true, false] {
            let mut got = drive_x(build(expr, Arc::clone(&exec), fuse), 60);
            got.sort();
            assert_eq!(
                got, reference,
                "{expr} lost/duplicated records under {name} (fuse={fuse})"
            );
        }
    }
}

#[test]
fn det_star_with_fused_inner_keeps_input_order() {
    // (dec .. dec) * {<z>}: the star's inner pipeline fuses — and
    // with fan fusion the whole star collapses into one component.
    // Det star output must stay in input order, identical to
    // unfused, both ways.
    let run = |fuse: bool, fan: bool, exec: Arc<dyn Executor>| -> Vec<String> {
        let net = fan_builder("(dec .. dec) * {<z>}")
            .executor(exec)
            .fuse(fuse)
            .fuse_fan(fan)
            .build("main")
            .unwrap();
        for (id, d) in (0..20i64).map(|i| (i, (i * 13 + 7) % 9 + 1)) {
            net.send(Record::build().field("n", d).tag("id", id).finish())
                .unwrap();
        }
        net.finish().iter().map(|r| format!("{r:?}")).collect()
    };
    let reference = run(false, false, Arc::new(ThreadPerComponent));
    for (name, exec) in executors() {
        for fuse in [true, false] {
            for fan in [true, false] {
                assert_eq!(
                    run(fuse, fan, Arc::clone(&exec)),
                    reference,
                    "det star diverged under {name} (fuse={fuse}, fan={fan})"
                );
            }
        }
    }
}

#[test]
fn fused_chain_runs_as_one_component() {
    // The point of fusion: n stages, one scheduled component.
    let fused = build(
        "inc .. inc .. inc .. inc",
        Arc::new(ThreadPerComponent),
        true,
    );
    let unfused = build(
        "inc .. inc .. inc .. inc",
        Arc::new(ThreadPerComponent),
        false,
    );
    assert_eq!(fused.threads_spawned(), 1);
    assert_eq!(unfused.threads_spawned(), 4);
    let _ = fused.finish();
    let _ = unfused.finish();
}

#[test]
fn barrier_chains_fuse_only_the_runs() {
    // inc .. inc .. (rep !! <k>) .. inc .. inc: two fused runs around
    // the replicator, which replica fusion collapses to a single
    // component of its own (dispatch + lanes + merge handoff) — 3
    // components in total, with lane cores unfolding on demand
    // inside the middle one.
    let net = build(
        "inc .. inc .. (rep !! <k>) .. inc .. inc",
        Arc::new(ThreadPerComponent),
        true,
    );
    assert_eq!(net.threads_spawned(), 3);
    let _ = net.finish();
}

#[test]
fn fan_fusion_escape_hatches_restore_the_unfused_topology() {
    // Fused: the whole replicator is one component. The net-global
    // and per-tag escape hatches restore dispatcher + merger at
    // spawn (replicas still unfold on demand); a hatch naming some
    // other tag changes nothing.
    let spawn_count = |b: NetBuilder| {
        let net = b.fuse(true).build("main").unwrap();
        let n = net.threads_spawned();
        net.send(
            Record::build()
                .field("x", 1i64)
                .tag("c", 2)
                .tag("k", 0)
                .finish(),
        )
        .unwrap();
        let _ = net.finish();
        n
    };
    let expr = "(inc .. rep) ! <k>";
    assert_eq!(spawn_count(fan_builder(expr)), 1);
    assert_eq!(spawn_count(fan_builder(expr).fuse_fan(false)), 2);
    assert_eq!(spawn_count(fan_builder(expr).fuse_fan_for("k", false)), 2);
    assert_eq!(spawn_count(fan_builder(expr).fuse_fan_for("zzz", false)), 1);
    // Restart's backoff sleep would park co-scheduled lanes: the
    // runtime legality check falls back on its own.
    assert_eq!(
        spawn_count(fan_builder(expr).fault_policy(FaultPolicy::Restart {
            max_retries: 1,
            backoff: std::time::Duration::from_millis(1),
        })),
        2
    );
    // An explicit lane-edge bound is honored by falling back too.
    assert_eq!(spawn_count(fan_builder(expr).bound_for("dispatch", 8)), 2);
}

#[test]
fn per_stage_metrics_paths_survive_fusion() {
    // The string query API cannot tell the topologies apart: every
    // per-stage counter lives at the same path with the same value.
    let run = |fuse: bool| {
        let net = build(
            "inc .. [{x} -> {y=x}] .. [{y} -> {x=y}] .. inc",
            Arc::new(ThreadPerComponent),
            fuse,
        );
        for i in 0..10i64 {
            net.send(Record::build().field("x", i).finish()).unwrap();
        }
        let metrics = Arc::clone(net.metrics());
        let out = net.finish();
        assert_eq!(out.len(), 10);
        metrics.snapshot()
    };
    let fused = run(true);
    let unfused = run(false);
    let stage_keys = |snap: &std::collections::BTreeMap<String, u64>| {
        snap.iter()
            .filter(|(k, _)| k.contains("box:") || k.contains("filter"))
            // Per-EDGE gauges (stream_depth / credit_stalls, present
            // when SNET_STREAM_BOUND is set) are excluded: fusion
            // removes the inter-stage edges by design, so only the
            // per-stage computation counters must match.
            .filter(|(k, _)| !k.ends_with("/stream_depth") && !k.ends_with("/credit_stalls"))
            .map(|(k, v)| (k.clone(), *v))
            .collect::<Vec<_>>()
    };
    assert_eq!(stage_keys(&fused), stage_keys(&unfused));
    // And the chain is 1:1, so every stage saw all 10 records at its
    // exact Serial-derived path.
    for (k, v) in &fused {
        if k.contains("records_in") && (k.contains("box:") || k.contains("filter")) {
            assert_eq!(*v, 10, "{k}");
        }
    }
    assert!(fused.keys().any(|k| k.contains("box:inc")));
    assert!(fused.keys().any(|k| k.contains("filter")));
}

#[test]
fn fan_metrics_paths_survive_replica_fusion() {
    // Replica fusion keeps every per-path counter — dispatcher
    // records_in/branches at the combinator path, per-replica box
    // counters at branch{k}/... — at the same key with the same value.
    let run = |fan: bool| {
        let net = fan_builder("(inc .. inc .. rep) ! <k>")
            .executor(Arc::new(ThreadPerComponent))
            .fuse(true)
            .fuse_fan(fan)
            .build("main")
            .unwrap();
        for i in 0..30i64 {
            net.send(
                Record::build()
                    .field("x", i)
                    .tag("c", (i * 7 + 3) % 4)
                    .tag("k", (i * 5 + 1) % 3)
                    .finish(),
            )
            .unwrap();
        }
        let metrics = Arc::clone(net.metrics());
        let _ = net.finish();
        metrics.snapshot()
    };
    let fused = run(true);
    let unfused = run(false);
    let keys = |snap: &std::collections::BTreeMap<String, u64>| {
        snap.iter()
            // Per-edge gauges vanish with the edges by design;
            // runtime/* globals (interner gauge, chaos counters) are
            // process-wide and depend on test interleaving.
            .filter(|(k, _)| !k.ends_with("/stream_depth") && !k.ends_with("/credit_stalls"))
            .filter(|(k, _)| !k.starts_with("runtime/"))
            .map(|(k, v)| (k.clone(), *v))
            .collect::<Vec<_>>()
    };
    assert_eq!(keys(&fused), keys(&unfused));
    assert!(fused.keys().any(|k| k.contains("branch")));
}

#[test]
fn chaos_skips_are_identical_fused_and_unfused_inside_lanes() {
    // The ISSUE's chaos leg: with a fixed seed, the per-stage chaos
    // decision streams are keyed by stage path, so replica fusion
    // must produce the exact same skips — same output, same per-path
    // records_skipped, and skipped == injected (panic-only chaos).
    let run = |fan: bool| {
        let net = fan_builder("(inc .. inc .. rep) ! <k>")
            .executor(Arc::new(ThreadPerComponent))
            .fault_policy(FaultPolicy::SkipRecord)
            .chaos(ChaosConfig::new(0xFA57_F00D, 0.1))
            .fuse(true)
            .fuse_fan(fan)
            .build("main")
            .unwrap();
        let metrics = Arc::clone(net.metrics());
        let out = drive_fan(net, 80);
        let injected = metrics.get("runtime/chaos_injected");
        let skipped = metrics.sum_matching("records_skipped");
        assert!(injected > 0, "chaos at 10% over 80 records never fired");
        assert_eq!(
            skipped, injected,
            "panic-only chaos: every injected fault must surface as a skip"
        );
        let mut skips: Vec<(String, u64)> = metrics
            .snapshot()
            .into_iter()
            .filter(|(k, v)| k.contains("records_skipped") && *v > 0)
            .collect();
        skips.sort();
        (out, skips)
    };
    let (out_fused, skips_fused) = run(true);
    let (out_unfused, skips_unfused) = run(false);
    assert_eq!(out_fused, out_unfused);
    assert_eq!(skips_fused, skips_unfused);
    assert!(
        skips_fused.iter().any(|(k, _)| k.contains("branch")),
        "expected skips inside replica branches, got {skips_fused:?}"
    );
}

#[test]
fn observers_see_per_stage_events_in_fused_chains() {
    use parking_lot::Mutex;
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let log2 = Arc::clone(&log);
    let net = NetBuilder::from_source(&format!("{SRC}\nnet main = inc .. inc;"))
        .unwrap()
        .bind("inc", |r, e| {
            let x = r.field("x").unwrap().as_int().unwrap();
            e.emit(Record::build().field("x", x + 1).finish());
        })
        .bind("rep", |r, e| e.emit(r.clone()))
        .bind("dec", |r, e| e.emit(r.clone()))
        .observe(Arc::new(move |path, dir, _rec| {
            log2.lock().push(format!("{path}:{dir:?}"));
        }))
        .fuse(true)
        .build("main")
        .unwrap();
    assert_eq!(net.threads_spawned(), 1);
    net.send(Record::build().field("x", 0i64).finish()).unwrap();
    let _ = net.finish();
    let log = log.lock();
    // Both stages observed, distinct paths, both directions.
    for stage in ["s0", "s1"] {
        for dir in ["In", "Out"] {
            assert!(
                log.iter()
                    .any(|e| e.contains(stage) && e.contains("box:inc") && e.ends_with(dir)),
                "missing {stage} {dir} in {log:?}"
            );
        }
    }
}

#[test]
fn snet_fuse_env_controls_the_default() {
    // Whichever way the process-wide default points (the SNET_FUSE=0
    // CI leg flips it), the builder override wins both ways and the
    // unforced build follows the env.
    let default_fused = snet_runtime::fuse_default();
    let net = NetBuilder::from_source(&format!("{SRC}\nnet main = inc .. inc;"))
        .unwrap()
        .bind("inc", |r, e| e.emit(r.clone()))
        .bind("rep", |r, e| e.emit(r.clone()))
        .bind("dec", |r, e| e.emit(r.clone()))
        .build("main")
        .unwrap();
    assert_eq!(net.threads_spawned(), if default_fused { 1 } else { 2 });
    let _ = net.finish();
}
