//! Soak coverage for long-lived shared-pool use — the ROADMAP blocker
//! for flipping the default executor: one process pool must survive
//! *many* networks, sequential and concurrent, without leaking worker
//! threads, leaving tasks queued, or wedging on its run queues.
//!
//! The leak oracles:
//! * the pool's OS thread count never grows past the worker count
//!   (checked via `/proc/self/status` on Linux — thread-per-component
//!   nets spawned in between prove the probe actually moves);
//! * after every network has been `finish`ed, the pool's run queues
//!   are empty (`queued_tasks() == 0`) and every net's tracker went
//!   quiescent with the expected component count.

use snet_runtime::{Executor, Net, NetBuilder, WorkStealingPool};
use snet_types::Record;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialises the soak tests: both assert on the *process-wide*
/// `/proc/self/status` thread count, so running them concurrently
/// (libtest's default) would let one test's transient threads fail
/// the other's leak check.
static PROC_PROBE: Mutex<()> = Mutex::new(());

fn serialize_probe() -> MutexGuard<'static, ()> {
    PROC_PROBE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Current OS thread count of this process (Linux); `None` elsewhere.
fn os_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
}

fn pipeline_net(exec: Arc<dyn Executor>) -> Net {
    NetBuilder::from_source(
        "box inc (x) -> (x);
         net main = inc .. inc .. inc;",
    )
    .unwrap()
    .bind("inc", |r, e| {
        let x = r.field("x").unwrap().as_int().unwrap();
        e.emit(Record::build().field("x", x + 1).finish());
    })
    .executor(exec)
    .build("main")
    .unwrap()
}

fn split_net(exec: Arc<dyn Executor>) -> Net {
    NetBuilder::from_source(
        "box id (x, <k>) -> (x, <k>);
         net main = id ! <k>;",
    )
    .unwrap()
    .bind("id", |r, e| e.emit(r.clone()))
    .executor(exec)
    .build("main")
    .unwrap()
}

fn drive_pipeline(net: Net, n: i64) {
    for i in 0..n {
        net.send(Record::build().field("x", i).finish()).unwrap();
    }
    let out = net.finish();
    assert_eq!(out.len(), n as usize);
}

#[test]
fn shared_pool_survives_many_sequential_and_concurrent_nets() {
    let _serial = serialize_probe();
    let pool = Arc::new(WorkStealingPool::new(2));
    let exec: Arc<dyn Executor> = Arc::clone(&pool) as _;
    let baseline = os_threads();

    // Wave 1: many short-lived sequential nets, mixed shapes.
    for round in 0..40 {
        if round % 3 == 0 {
            let net = split_net(Arc::clone(&exec));
            for i in 0..60i64 {
                net.send(Record::build().field("x", i).tag("k", i % 6).finish())
                    .unwrap();
            }
            let out = net.finish();
            assert_eq!(out.len(), 60, "round {round}");
        } else {
            drive_pipeline(pipeline_net(Arc::clone(&exec)), 50);
        }
        assert_eq!(
            pool.queued_tasks(),
            0,
            "tasks left queued after round {round}"
        );
    }

    // Wave 2: concurrent nets sharing the same two workers, driven
    // from separate OS threads (the production shape: one long-lived
    // pool, many independent clients).
    std::thread::scope(|s| {
        for t in 0..6 {
            let exec = Arc::clone(&exec);
            s.spawn(move || {
                for _ in 0..5 {
                    let net = pipeline_net(Arc::clone(&exec));
                    for i in 0..40i64 {
                        net.send(Record::build().field("x", t * 1000 + i).finish())
                            .unwrap();
                    }
                    let out = net.finish();
                    assert_eq!(out.len(), 40);
                }
            });
        }
    });
    assert_eq!(pool.queued_tasks(), 0, "tasks left queued after soak");
    assert_eq!(pool.workers(), 2, "worker count drifted");

    // Flat OS thread count: the pool never grew past its two workers.
    // (The probe is process-wide; other test threads come and go, so
    // only assert on Linux and with slack for the harness itself.)
    if let (Some(before), Some(after)) = (baseline, os_threads()) {
        assert!(
            after <= before + 2,
            "thread leak: {before} OS threads before soak, {after} after"
        );
    }

    // The pool is still serviceable after the soak.
    drive_pipeline(pipeline_net(exec), 25);
}

/// Bounded nets on the shared pool: the backpressure gauges
/// (`stream_depth` high-water, `credit_stalls` park episodes) are the
/// operator-facing signal that a production pool is running against
/// its bounds. Soak a slow bounded pipeline and sample both — depth
/// must report, must respect the bound, and a consumer ~100× slower
/// than the ingress must register stalls.
#[test]
fn bounded_soak_reports_depth_and_stall_gauges() {
    const BOUND: usize = 4;
    let pool: Arc<dyn Executor> = Arc::new(WorkStealingPool::new(2));
    for round in 0..4 {
        let net = NetBuilder::from_source(
            "box inc (x) -> (x);
             box drag (x) -> (x);
             net main = inc .. drag;",
        )
        .unwrap()
        .bind("inc", |r, e| {
            let x = r.field("x").unwrap().as_int().unwrap();
            e.emit(Record::build().field("x", x + 1).finish());
        })
        .bind("drag", |r, e| {
            std::thread::sleep(std::time::Duration::from_micros(100));
            e.emit(r.clone());
        })
        .executor(Arc::clone(&pool))
        .fuse(false)
        .bound(BOUND)
        .build("main")
        .unwrap();
        for i in 0..300i64 {
            net.send(Record::build().field("x", i).finish()).unwrap();
        }
        let metrics = Arc::clone(net.metrics());
        let out = net.finish();
        assert_eq!(out.len(), 300, "round {round}");

        // Per-edge high-waters and the net-global mirror both report,
        // and no bounded edge ever exceeded its capacity.
        let depth = metrics.max_matching("stream_depth");
        assert!(depth > 0, "round {round}: no depth samples recorded");
        assert!(
            depth as usize <= BOUND,
            "round {round}: depth {depth} exceeded bound {BOUND}"
        );
        assert_eq!(metrics.get("runtime/stream_depth"), depth);
        assert!(
            metrics.get("runtime/credit_stalls") > 0,
            "round {round}: a 100µs/record consumer must stall its producer"
        );
        assert_eq!(
            metrics.sum_matching("credit_stalls"),
            metrics.get("runtime/credit_stalls") * 2,
            "round {round}: per-edge stalls must mirror into the global counter"
        );
    }
}

#[test]
fn shared_pool_outlives_thread_per_component_churn() {
    // Interleave pool nets with thread-per-component nets: the
    // dedicated threads must all be joined by finish(), returning the
    // process to its pre-net thread count while the pool idles.
    let _serial = serialize_probe();
    let pool = Arc::new(WorkStealingPool::new(2));
    let before = os_threads();
    for _ in 0..10 {
        let threads_exec: Arc<dyn Executor> = Arc::new(snet_runtime::ThreadPerComponent);
        drive_pipeline(pipeline_net(threads_exec), 30);
        drive_pipeline(pipeline_net(Arc::clone(&pool) as Arc<dyn Executor>), 30);
        assert_eq!(pool.queued_tasks(), 0);
    }
    if let (Some(b), Some(a)) = (before, os_threads()) {
        assert!(
            a <= b + 2,
            "component threads leaked across churn: {b} -> {a}"
        );
    }
}
