//! Fault-injection coverage for the bounded-edge / credit subsystem
//! (`NetBuilder::bound`, see `snet_runtime::stream`).
//!
//! Three injected overload shapes, each an instance of "producers are
//! systematically faster than consumers":
//!
//! * **stalled consumer** — the last stage blocks on an external latch
//!   while the driver keeps sending; every interior queue must stop
//!   growing at the configured bound;
//! * **slow stage** — a middle stage runs orders of magnitude slower
//!   than the ingress; depth stays at the bound for the whole run, not
//!   just transiently;
//! * **amplifying chain** — six stages that each triple the stream
//!   (3^6 = 729× fan-out); without credit gating the interior queues
//!   would hold tens of thousands of records.
//!
//! The depth oracle is the `stream_depth` high-water gauge family
//! (`Metrics::max_matching`), which bounded edges maintain on every
//! credit acquisition. The scenarios use **sort-free** nets: sort
//! records are deliberately never gated (see `snet_runtime::merge`),
//! so deterministic-combinator traffic may transiently exceed the
//! bound by design. Determinism under bounding is instead checked by
//! the byte-identity matrix below, and liveness by a randomized
//! stall/resume schedule run under a watchdog.

use snet_runtime::{
    Executor, Net, NetBuilder, OverloadPolicy, SendRejected, ThreadPerComponent, WorkStealingPool,
};
use snet_types::Record;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// An external latch a box can block on: fault injection for a
/// consumer that stops consuming until the test releases it.
#[derive(Default)]
struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Arc<Latch> {
        Arc::new(Latch::default())
    }
    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }
    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

fn ints(records: &[Record], field: &str) -> Vec<i64> {
    records
        .iter()
        .map(|r| r.field(field).unwrap().as_int().unwrap())
        .collect()
}

/// A four-stage relay chain whose last stage blocks on `latch` after
/// counting its arrival. Unfused so every inter-stage edge is real.
fn gated_chain(bound: usize, latch: Arc<Latch>, arrived: Arc<AtomicUsize>) -> Net {
    NetBuilder::from_source(
        "box relay (x) -> (x);
         box gate (x) -> (x);
         net main = relay .. relay .. relay .. gate;",
    )
    .unwrap()
    .bind("relay", |r, e| e.emit(r.clone()))
    .bind("gate", move |r, e| {
        arrived.fetch_add(1, Ordering::SeqCst);
        latch.wait();
        e.emit(r.clone());
    })
    .executor(Arc::new(ThreadPerComponent))
    .fuse(false)
    .bound(bound)
    .build("main")
    .unwrap()
}

#[test]
fn stalled_consumer_caps_every_queue_at_the_bound() {
    const BOUND: usize = 8;
    const N: i64 = 4000;
    let latch = Latch::new();
    let arrived = Arc::new(AtomicUsize::new(0));
    let net = gated_chain(BOUND, Arc::clone(&latch), Arc::clone(&arrived));

    // The driver blocks once the chain is saturated (Block policy), so
    // it gets its own thread while the main thread probes the gauges.
    std::thread::scope(|s| {
        let driver = s.spawn(|| {
            for i in 0..N {
                net.send(Record::build().field("x", i).finish()).unwrap();
            }
        });

        // Wait for the fault to engage: the gate has a record and is
        // parked on the latch, and the driver has had time to flood.
        while arrived.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(100));

        // Every bounded edge stopped at the bound even though ~4000
        // records are trying to get through a stalled pipeline.
        let high_water = net.metrics().max_matching("stream_depth");
        assert!(
            high_water as usize <= BOUND,
            "queue depth {high_water} exceeded bound {BOUND} under a stalled consumer"
        );
        // And the flood really was held upstream, not buffered: at
        // most the record the gate is sleeping on plus one adopted by
        // its input loop got past the interior queues.
        let in_flight = arrived.load(Ordering::SeqCst);
        assert!(
            in_flight <= 2,
            "gate received {in_flight} records while stalled"
        );

        latch.release();
        driver.join().unwrap();
    });
    let out = net.finish();
    assert_eq!(ints(&out, "x"), (0..N).collect::<Vec<_>>());
}

#[test]
fn slow_stage_holds_depth_at_bound_for_whole_run() {
    const BOUND: usize = 16;
    const N: i64 = 600;
    let net = NetBuilder::from_source(
        "box fast (x) -> (x);
         box slow (x) -> (x);
         net main = fast .. slow .. fast;",
    )
    .unwrap()
    .bind("fast", |r, e| e.emit(r.clone()))
    .bind("slow", |r, e| {
        std::thread::sleep(Duration::from_micros(200));
        e.emit(r.clone());
    })
    .executor(Arc::new(ThreadPerComponent))
    .fuse(false)
    .bound(BOUND)
    .build("main")
    .unwrap();

    std::thread::scope(|s| {
        let driver = s.spawn(|| {
            for i in 0..N {
                net.send(Record::build().field("x", i).finish()).unwrap();
            }
        });
        // Probe repeatedly *during* the run: a bound that only holds
        // at quiescence would pass a single end-of-run check.
        for _ in 0..20 {
            std::thread::sleep(Duration::from_millis(5));
            let d = net.metrics().max_matching("stream_depth");
            assert!(d as usize <= BOUND, "depth {d} exceeded bound {BOUND}");
        }
        driver.join().unwrap();
    });
    let metrics = Arc::clone(net.metrics());
    let out = net.finish();
    assert_eq!(ints(&out, "x"), (0..N).collect::<Vec<_>>());
    assert!(metrics.max_matching("stream_depth") as usize <= BOUND);
    // The slow edge stalled its producer many times — the counter is
    // the observability contract for diagnosing this in production.
    assert!(
        metrics.get("runtime/credit_stalls") > 0,
        "a 200µs/record stage behind a fast producer must stall credits"
    );
}

#[test]
fn amplifying_chain_fan_729_stays_bounded() {
    const BOUND: usize = 32;
    const N: i64 = 24; // 24 × 3^6 = 17,496 output records.
    let net = NetBuilder::from_source(
        "box amp (x) -> (x);
         net main = amp .. amp .. amp .. amp .. amp .. amp;",
    )
    .unwrap()
    .bind("amp", |r, e| {
        let x = r.field("x").unwrap().as_int().unwrap();
        for i in 0..3i64 {
            e.emit(Record::build().field("x", x * 3 + i).finish());
        }
    })
    .executor(Arc::new(ThreadPerComponent))
    .fuse(false)
    .bound(BOUND)
    .build("main")
    .unwrap();

    for i in 0..N {
        net.send(Record::build().field("x", i).finish()).unwrap();
    }
    let metrics = Arc::clone(net.metrics());
    let out = net.finish();
    assert_eq!(out.len(), (N as usize) * 729);

    // Interior queues never held more than the bound, even while each
    // stage was emitting three records per input. Unbounded, the final
    // edges would see thousands in flight.
    let high_water = metrics.max_matching("stream_depth");
    assert!(
        high_water as usize <= BOUND,
        "amplified depth {high_water} exceeded bound {BOUND}"
    );
    assert!(metrics.get("runtime/stream_depth") > 0);
}

/// The determinism contract: bounding is invisible in the output.
/// One det-parallel/det-split net, driven identically bounded and
/// unbounded across {thread-per-component, pool(1), pool(2)} ×
/// {fused, unfused}; every leg must produce the byte-identical
/// record sequence.
#[test]
fn det_output_identical_bounded_vs_unbounded_across_executors() {
    let build = |bound: Option<usize>, fuse: bool, exec: Arc<dyn Executor>| -> Net {
        let mut b = NetBuilder::from_source(
            "box rep (x, <c>) -> (y);
             box sink (y) -> (y);
             net main = ((rep | rep) ! <k>) .. sink .. sink;",
        )
        .unwrap()
        .bind("rep", |rec, em| {
            let x = rec.field("x").unwrap().as_int().unwrap();
            let c = rec.tag("c").unwrap();
            for i in 0..c {
                em.emit(Record::build().field("y", x * 10 + i).finish());
            }
        })
        .bind("sink", |r, e| e.emit(r.clone()))
        .executor(exec)
        .fuse(fuse);
        // `None` must be an explicit opt-out: since PR 7 the process
        // default is bounded (DEFAULT_STREAM_BOUND), so omitting
        // `.bound()` would no longer give this leg unbounded edges.
        b = match bound {
            Some(n) => b.bound(n),
            None => b.unbounded(),
        };
        b.build("main").unwrap()
    };
    let drive = |net: Net| -> Vec<i64> {
        for i in 0..400i64 {
            net.send(
                Record::build()
                    .field("x", i)
                    .tag("c", 1 + i % 3)
                    .tag("k", i % 5)
                    .finish(),
            )
            .unwrap();
        }
        ints(&net.finish(), "y")
    };

    let reference = drive(build(None, true, Arc::new(ThreadPerComponent)));
    let want: i64 = (0..400i64).map(|i| 1 + i % 3).sum();
    assert_eq!(reference.len() as i64, want);

    type MkExec = Box<dyn Fn() -> Arc<dyn Executor>>;
    let executors: Vec<(&str, MkExec)> = vec![
        ("threads", Box::new(|| Arc::new(ThreadPerComponent))),
        ("pool(1)", Box::new(|| Arc::new(WorkStealingPool::new(1)))),
        ("pool(2)", Box::new(|| Arc::new(WorkStealingPool::new(2)))),
    ];
    for (name, mk) in &executors {
        for fuse in [true, false] {
            for bound in [None, Some(4), Some(64)] {
                let got = drive(build(bound, fuse, mk()));
                assert_eq!(
                    got, reference,
                    "{name} fuse={fuse} bound={bound:?} diverged from reference"
                );
            }
        }
    }
}

/// Liveness under a randomized stall/resume schedule: a middle stage
/// sleeps pseudo-randomly (LCG, fixed seed) while the driver sends in
/// randomized bursts with pauses in between, against tiny bounds and
/// every executor. A deadlock in the credit machinery would hang the
/// run; the watchdog converts that into a failure.
#[test]
fn randomized_stall_resume_schedule_never_deadlocks() {
    fn run_leg(exec: Arc<dyn Executor>, fuse: bool, bound: usize, seed: u64) -> Vec<i64> {
        let stall_seed = Arc::new(AtomicUsize::new(seed as usize));
        let net = NetBuilder::from_source(
            "box jitter (x) -> (x);
             box relay (x) -> (x);
             net main = relay .. jitter .. relay;",
        )
        .unwrap()
        .bind("relay", |r, e| e.emit(r.clone()))
        .bind("jitter", move |r, e| {
            // Per-record LCG step: ~1 in 8 records stalls 0–400µs.
            let s = stall_seed
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| {
                    Some(
                        s.wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407),
                    )
                })
                .unwrap();
            if s.is_multiple_of(8) {
                std::thread::sleep(Duration::from_micros((s as u64 >> 33) % 400));
            }
            e.emit(r.clone());
        })
        .executor(exec)
        .fuse(fuse)
        .bound(bound)
        .build("main")
        .unwrap();

        let mut lcg = seed | 1;
        let mut sent = 0i64;
        while sent < 500 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let burst = 1 + (lcg >> 40) % 30;
            for _ in 0..burst {
                if sent >= 500 {
                    break;
                }
                net.send(Record::build().field("x", sent).finish()).unwrap();
                sent += 1;
            }
            if lcg.is_multiple_of(4) {
                std::thread::sleep(Duration::from_micros((lcg >> 20) % 300));
            }
        }
        ints(&net.finish(), "x")
    }

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut seed = 0x5eed_u64;
        for fuse in [true, false] {
            for bound in [2usize, 7, 64] {
                seed = seed.wrapping_add(0x9e3779b97f4a7c15);
                let want: Vec<i64> = (0..500).collect();
                assert_eq!(
                    run_leg(Arc::new(ThreadPerComponent), fuse, bound, seed),
                    want,
                    "threads fuse={fuse} bound={bound}"
                );
                for workers in [1, 2] {
                    assert_eq!(
                        run_leg(Arc::new(WorkStealingPool::new(workers)), fuse, bound, seed),
                        want,
                        "pool({workers}) fuse={fuse} bound={bound}"
                    );
                }
            }
        }
        done_tx.send(()).unwrap();
    });
    done_rx
        .recv_timeout(Duration::from_secs(240))
        .expect("stall/resume schedule deadlocked (watchdog expired)");
}

#[test]
fn shed_policy_rejects_overflow_and_delivers_the_rest() {
    const BOUND: usize = 4;
    let latch = Latch::new();
    let arrived = Arc::new(AtomicUsize::new(0));
    let net = NetBuilder::from_source(
        "box gate (x) -> (x);
         net main = gate;",
    )
    .unwrap()
    .bind("gate", {
        let latch = Arc::clone(&latch);
        let arrived = Arc::clone(&arrived);
        move |r, e| {
            arrived.fetch_add(1, Ordering::SeqCst);
            latch.wait();
            e.emit(r.clone());
        }
    })
    .executor(Arc::new(ThreadPerComponent))
    .bound(BOUND)
    .overload(OverloadPolicy::Shed)
    .build("main")
    .unwrap();

    // Let the gate adopt its one in-flight record so acceptance counts
    // are stable, then flood. Accepted + shed must partition the sends.
    let mut accepted = Vec::new();
    let mut shed = 0usize;
    for i in 0..200i64 {
        match net.send(Record::build().field("x", i).finish()) {
            Ok(()) => accepted.push(i),
            Err(SendRejected::Overloaded) => shed += 1,
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    assert!(shed > 0, "a stalled consumer behind bound 4 must shed");
    assert!(
        accepted.len() <= BOUND + 2,
        "accepted {} records into a stalled bound-{BOUND} net",
        accepted.len()
    );

    latch.release();
    let out = net.finish();
    // Exactly the accepted records arrive, in order — shedding never
    // drops an accepted record and never lets a shed one through.
    assert_eq!(ints(&out, "x"), accepted);
}

#[test]
fn timeout_policy_gives_up_after_deadline_then_recovers() {
    const BOUND: usize = 2;
    let latch = Latch::new();
    let net = NetBuilder::from_source(
        "box gate (x) -> (x);
         net main = gate;",
    )
    .unwrap()
    .bind("gate", {
        let latch = Arc::clone(&latch);
        move |r, e| {
            latch.wait();
            e.emit(r.clone());
        }
    })
    .executor(Arc::new(ThreadPerComponent))
    .bound(BOUND)
    .overload(OverloadPolicy::Timeout(Duration::from_millis(40)))
    .build("main")
    .unwrap();

    let mut accepted = Vec::new();
    let mut timed_out = 0usize;
    let mut waited = Duration::ZERO;
    for i in 0..10i64 {
        let t0 = Instant::now();
        match net.send(Record::build().field("x", i).finish()) {
            Ok(()) => accepted.push(i),
            Err(SendRejected::Timeout) => {
                timed_out += 1;
                waited = t0.elapsed();
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    assert!(timed_out > 0, "bound-2 stalled net must time sends out");
    assert!(
        waited >= Duration::from_millis(40),
        "timed-out send returned after {waited:?}, before the deadline"
    );
    assert!(
        waited < Duration::from_secs(5),
        "timed-out send blocked {waited:?}, way past the deadline"
    );

    // Once the fault clears, the same net accepts traffic again.
    latch.release();
    while net.send(Record::build().field("x", 100).finish()).is_err() {
        std::thread::sleep(Duration::from_millis(1));
    }
    let out = net.finish();
    let got = ints(&out, "x");
    assert_eq!(&got[..accepted.len()], &accepted[..]);
    assert_eq!(*got.last().unwrap(), 100);
}
