//! End-to-end reproduction of the paper's behavioural claims about
//! Figures 1–3 (the paper has no numeric tables; these structural
//! bounds are its evaluation — see EXPERIMENTS.md).

use sudoku::networks::{solve_fig1, solve_fig2, solve_fig3};
use sudoku::puzzles;
use sudoku::sac_solver::{solve_puzzle, Policy};
use sudoku::Board;

fn reference(puzzle: &Board) -> Board {
    let (solved, _) = solve_puzzle(puzzle, Policy::MinTrues);
    assert!(solved.is_solved(), "corpus puzzle must be solvable");
    solved
}

#[test]
fn fig1_pipeline_depth_bounded_by_cell_count() {
    // "this unfolding cannot lead to pipelines longer than 81 replicas
    // of the solveOneLevel box" (Section 5).
    for puzzle in [puzzles::classic9(), puzzles::easy9(), puzzles::medium9()] {
        let run = solve_fig1(&puzzle);
        assert_eq!(run.solutions.len(), 1);
        assert_eq!(run.solutions[0], reference(&puzzle));
        let stages = run.metrics.max_matching("/stages");
        // stages counts guards; replicas = stages - 1 <= 81.
        assert!(
            stages <= 82,
            "pipeline unfolded {stages} guards (> 81 replicas) on a 9x9 puzzle"
        );
        // Tighter: one replica per placed number.
        let placements = (puzzle.cell_count() - puzzle.placed()) as u64;
        assert!(
            stages <= placements + 2,
            "stages {stages} exceed placements {placements} + exit guard"
        );
    }
}

#[test]
fn fig2_replica_bounds_9_per_stage_729_total() {
    // "no more than 9 replicas of the solveOneLevel box will be
    // created [per stage] ... a maximum of 9 x 81 = 729 solveOneLevel
    // boxes" (Section 5).
    for puzzle in [puzzles::classic9(), puzzles::medium9(), puzzles::hard9()] {
        let run = solve_fig2(&puzzle);
        assert_eq!(run.solutions.len(), 1);
        assert_eq!(run.solutions[0], reference(&puzzle));
        let max_per_stage = run.metrics.max_matching("/branches");
        assert!(
            max_per_stage <= 9,
            "a stage unfolded {max_per_stage} parallel replicas (> 9)"
        );
        let total_boxes = run.metrics.count_matching("box:solveOneLevelK/spawned");
        assert!(
            total_boxes <= 729,
            "{total_boxes} solveOneLevelK instances (> 729)"
        );
    }
}

#[test]
fn fig3_modulo_throttles_parallel_width() {
    // "we reduce all potential values for <k> to the range 0 to 3,
    // which implicitly limits the parallel unfolding to a maximum of 4
    // instances" (Section 5).
    let puzzle = puzzles::medium9();
    for modulo in [1i64, 2, 4] {
        let run = solve_fig3(&puzzle, modulo, 40);
        assert!(
            run.solutions.contains(&reference(&puzzle)),
            "throttled net (mod {modulo}) lost the solution"
        );
        let width = run.metrics.max_matching("/branches") as i64;
        assert!(
            width <= modulo,
            "mod {modulo} throttle allowed width {width}"
        );
    }
}

#[test]
fn fig3_level_cutoff_bounds_pipeline_depth() {
    // "we can use a more elaborate predicate for leaving the serial
    // replicator such as {<level>} | <level> > 40 ... we need to link
    // up yet another box which calls the full solver" (Section 5).
    let puzzle = puzzles::classic9();
    let clues = puzzle.placed() as u64;
    for cutoff in [35i64, 45, 60] {
        let run = solve_fig3(&puzzle, 4, cutoff);
        assert!(run.solutions.contains(&reference(&puzzle)));
        let stages = run.metrics.max_matching("/stages");
        // A record exits once its level exceeds the cutoff, i.e. after
        // at most (cutoff - clues + 1) placements, plus the exit guard.
        let bound = (cutoff as u64).saturating_sub(clues) + 2;
        assert!(
            stages <= bound,
            "cutoff {cutoff}: depth {stages} exceeds bound {bound}"
        );
    }
}

#[test]
fn fig3_tail_solver_receives_early_exits() {
    // With a low cutoff, most exits are incomplete boards: the tail
    // solve box must run (outputs > solutions possible) and the true
    // solution must be among the results.
    let puzzle = puzzles::classic9();
    let run = solve_fig3(&puzzle, 4, 35);
    assert!(run.outputs >= 1);
    assert!(run.solutions.contains(&reference(&puzzle)));
    let solve_runs = run.metrics.sum_matching("box:solve/records_in");
    assert!(
        solve_runs >= 1,
        "tail solver never ran despite the early cutoff"
    );
}

#[test]
fn all_three_networks_agree_on_the_corpus() {
    for puzzle in [puzzles::mini4(), puzzles::classic9(), puzzles::easy9()] {
        let expected = reference(&puzzle);
        let cutoff = (puzzle.cell_count() as i64 * 3) / 4;
        let f1 = solve_fig1(&puzzle);
        let f2 = solve_fig2(&puzzle);
        let f3 = solve_fig3(&puzzle, 4, cutoff);
        assert_eq!(f1.solutions, vec![expected.clone()]);
        assert_eq!(f2.solutions, vec![expected.clone()]);
        assert!(f3.solutions.contains(&expected));
    }
}

#[test]
fn unsolvable_puzzles_produce_no_solutions_anywhere() {
    let puzzle = puzzles::stuck4();
    assert!(solve_fig1(&puzzle).solutions.is_empty());
    assert!(solve_fig2(&puzzle).solutions.is_empty());
    assert!(solve_fig3(&puzzle, 2, 8).solutions.is_empty());
}

#[test]
fn fig2_unfolds_wider_than_fig1() {
    // The point of Fig. 2: "the placement of the (n+1)th number
    // concurrently" — its parallel replicators create breadth Fig. 1
    // cannot. On a branchy puzzle, some stage must hold > 1 replica.
    let puzzle = puzzles::hard9();
    let run = solve_fig2(&puzzle);
    let width = run.metrics.max_matching("/branches");
    assert!(
        width >= 2,
        "expected parallel unfolding on a hard puzzle, got width {width}"
    );
}

#[test]
fn fig1_scales_to_16x16_boards() {
    // The footnote's motivation: the same network text runs unchanged
    // on bigger boards (the type layer never mentions sizes).
    let puzzle = puzzles::big16();
    let run = solve_fig1(&puzzle);
    assert!(!run.solutions.is_empty());
    assert!(run.solutions[0].is_solved());
    let stages = run.metrics.max_matching("/stages");
    assert!(stages as usize <= puzzle.cell_count() + 1);
}

/// 25×25 — several seconds of puzzle generation, run explicitly with
/// `cargo test -- --ignored`.
#[test]
#[ignore = "generation of the 25x25 instance takes several seconds"]
fn fig1_scales_to_25x25_boards() {
    let puzzle = puzzles::big25();
    let run = solve_fig1(&puzzle);
    assert!(!run.solutions.is_empty());
    assert!(run.solutions[0].is_solved());
}

#[test]
fn boxes_spawn_threads_per_replica() {
    // "If we assume that each box creates a separate process/thread"
    // (Section 5) — the literal execution model. Replica fusion runs
    // Fig. 1's whole star as one component by default, so this test
    // pins the paper's topology with the per-net escape hatch.
    let puzzle = puzzles::classic9();
    let net = sudoku::networks::builder(3, Vec::new())
        .unwrap()
        .fuse_fan(false)
        .build_expr(sudoku::networks::FIG1)
        .unwrap();
    net.send(sudoku::boxes::puzzle_record(&puzzle)).unwrap();
    let threads_before_drain = net.threads_spawned();
    let _ = net.finish();
    assert!(
        threads_before_drain >= 3,
        "expected at least computeOpts + guard + merge threads"
    );
}
