//! Cross-crate runtime semantics: ordering guarantees of the
//! deterministic and non-deterministic combinator variants, nesting,
//! observers, and load-adaptivity — the Section 4 execution model.

use parking_lot::Mutex;
use snet_runtime::{Dir, NetBuilder, Observer};
use snet_types::{Record, Value};
use std::sync::Arc;

/// A network of two "workers" with identical types but very different
/// speeds, merged (non)deterministically. `slow_ms` injects real skew.
fn speed_net(det: bool, slow_ms: u64) -> snet_runtime::Net {
    let src = format!(
        "box fast (x, <w>) -> (x, <who>);
         box slow (x, <w>) -> (x, <who>);
         net main = fast {} slow;",
        if det { "|" } else { "||" }
    );
    NetBuilder::from_source(&src)
        .unwrap()
        .bind("fast", |rec, em| {
            let x = rec.field("x").unwrap().as_int().unwrap();
            em.emit(Record::build().field("x", x).tag("who", 0).finish());
        })
        .bind("slow", move |rec, em| {
            std::thread::sleep(std::time::Duration::from_millis(slow_ms));
            let x = rec.field("x").unwrap().as_int().unwrap();
            em.emit(Record::build().field("x", x).tag("who", 1).finish());
        })
        .build("main")
        .unwrap()
}

#[test]
fn nondet_merge_is_load_adaptive() {
    // "any record produced proceeds as soon as possible. This
    // behaviour makes it possible to write S-Net programs that adapt
    // to the load distribution" — fast results overtake slow ones.
    let net = speed_net(false, 40);
    // Equal match scores: records alternate between branches; make the
    // slow branch receive the FIRST record so overtaking is observable.
    for i in 0..6i64 {
        net.send(Record::build().field("x", i).tag("w", 0).finish())
            .unwrap();
    }
    let out = net.finish();
    assert_eq!(out.len(), 6);
    let who: Vec<i64> = out.iter().map(|r| r.tag("who").unwrap()).collect();
    // All fast-branch results must precede at least the last
    // slow-branch result (with 40ms skew per slow record this is
    // deterministic in practice).
    let last_fast = who.iter().rposition(|&w| w == 0).unwrap();
    let first_slow = who.iter().position(|&w| w == 1).unwrap();
    assert!(
        first_slow > 0 || last_fast > first_slow,
        "expected some overtaking, got {who:?}"
    );
}

#[test]
fn det_merge_restores_input_order_despite_skew() {
    let net = speed_net(true, 20);
    for i in 0..8i64 {
        net.send(Record::build().field("x", i).tag("w", 0).finish())
            .unwrap();
    }
    let out = net.finish();
    let xs: Vec<i64> = out
        .iter()
        .map(|r| r.field("x").unwrap().as_int().unwrap())
        .collect();
    assert_eq!(
        xs,
        (0..8).collect::<Vec<_>>(),
        "det merge must restore order"
    );
}

#[test]
fn det_split_inside_nondet_parallel() {
    // Nesting: a deterministic split inside a non-deterministic
    // parallel composition. Per-split order must hold per branch.
    let src = "
        box work (x, <k>) -> (x, <k>);
        box other (y) -> (y);
        net main = (work ! <k>) || other;
    ";
    let net = NetBuilder::from_source(src)
        .unwrap()
        .bind("work", |rec, em| {
            let x = rec.field("x").unwrap().as_int().unwrap();
            let k = rec.tag("k").unwrap();
            em.emit(Record::build().field("x", x).tag("k", k).finish());
        })
        .bind("other", |rec, em| em.emit(rec.clone()))
        .build("main")
        .unwrap();
    for i in 0..24i64 {
        net.send(Record::build().field("x", i).tag("k", i % 3).finish())
            .unwrap();
        net.send(Record::build().field("y", i).finish()).unwrap();
    }
    let out = net.finish();
    assert_eq!(out.len(), 48);
    // The det-split side preserved global input order among its own
    // records.
    let xs: Vec<i64> = out
        .iter()
        .filter_map(|r| r.field("x").map(|v| v.as_int().unwrap()))
        .collect();
    assert_eq!(xs, (0..24).collect::<Vec<_>>());
}

#[test]
fn nondet_star_inside_det_parallel_keeps_outer_order() {
    // The hard case: a NON-deterministic replicator nested inside a
    // DETERMINISTIC parallel composition. The outer det scope must
    // still deliver results in input order — its sort records traverse
    // the star's guards and merger.
    let src = "
        box countdown (n) -> (n) | (n, <z>);
        box mirror (m) -> (m);
        net main = (countdown ** {<z>}) | mirror;
    ";
    let net = NetBuilder::from_source(src)
        .unwrap()
        .bind("countdown", |rec, em| {
            let n = rec.field("n").unwrap().as_int().unwrap();
            if n <= 1 {
                em.emit(Record::build().field("n", 0i64).tag("z", 1).finish());
            } else {
                em.emit(Record::build().field("n", n - 1).finish());
            }
        })
        .bind("mirror", |rec, em| em.emit(rec.clone()))
        .build("main")
        .unwrap();

    // Alternate: deep countdowns (slow) and mirrors (instant). The det
    // parallel must emit them in input order regardless.
    let mut expected_kind = Vec::new();
    for i in 0..10i64 {
        if i % 2 == 0 {
            net.send(Record::build().field("n", 30 + i).tag("id", i).finish())
                .unwrap();
            expected_kind.push("n");
        } else {
            net.send(Record::build().field("m", i).tag("id", i).finish())
                .unwrap();
            expected_kind.push("m");
        }
    }
    let out = net.finish();
    assert_eq!(out.len(), 10);
    let ids: Vec<i64> = out.iter().map(|r| r.tag("id").unwrap()).collect();
    assert_eq!(
        ids,
        (0..10).collect::<Vec<_>>(),
        "outer det scope order broken by inner nondet star"
    );
}

#[test]
fn observers_see_every_stream_individually() {
    // "all streams can be observed individually" (Section 1).
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let log2 = Arc::clone(&log);
    let obs: Observer = Arc::new(move |path, dir, rec| {
        log2.lock().push(format!(
            "{path} {} {}",
            if dir == Dir::In { "<-" } else { "->" },
            rec.record_type()
        ));
    });
    let src = "
        box a (x) -> (x);
        box b (x) -> (x);
        net main = a .. [{x} -> {x}] .. b;
    ";
    let net = NetBuilder::from_source(src)
        .unwrap()
        .bind("a", |r, e| e.emit(r.clone()))
        .bind("b", |r, e| e.emit(r.clone()))
        .observe(obs)
        .build("main")
        .unwrap();
    net.send(Record::build().field("x", 1i64).finish()).unwrap();
    let _ = net.finish();
    let log = log.lock();
    // Each component boundary observed, with distinct paths.
    assert!(log.iter().any(|l| l.contains("box:a") && l.contains("<-")));
    assert!(log.iter().any(|l| l.contains("box:a") && l.contains("->")));
    assert!(log.iter().any(|l| l.contains("filter")));
    assert!(log.iter().any(|l| l.contains("box:b")));
}

#[test]
fn multi_output_boxes_fan_out_through_pipeline() {
    // A box emitting a dynamic number of records ("an S-Net box may
    // yield multiple output records ... in response to a single input
    // record"), composed serially.
    let src = "
        box burst (n) -> (v);
        box negate (v) -> (v);
        net main = burst .. negate;
    ";
    let net = NetBuilder::from_source(src)
        .unwrap()
        .bind("burst", |rec, em| {
            let n = rec.field("n").unwrap().as_int().unwrap();
            for v in 0..n {
                em.emit(Record::build().field("v", v).finish());
            }
        })
        .bind("negate", |rec, em| {
            let v = rec.field("v").unwrap().as_int().unwrap();
            em.emit(Record::build().field("v", -v).finish());
        })
        .build("main")
        .unwrap();
    net.send(Record::build().field("n", 5i64).finish()).unwrap();
    net.send(Record::build().field("n", 0i64).finish()).unwrap();
    net.send(Record::build().field("n", 2i64).finish()).unwrap();
    let out = net.finish();
    let vs: Vec<i64> = out
        .iter()
        .map(|r| r.field("v").unwrap().as_int().unwrap())
        .collect();
    assert_eq!(vs, vec![0, -1, -2, -3, -4, 0, -1]);
}

#[test]
fn stateless_boxes_share_nothing() {
    // Boxes are stateless: processing the same record twice gives the
    // same outputs regardless of interleaving. Hammer a box from a
    // split and check value integrity.
    let src = "
        box square (x) -> (x, sq);
        net main = square !! <lane>;
    ";
    let net = NetBuilder::from_source(src)
        .unwrap()
        .bind("square", |rec, em| {
            let x = rec.field("x").unwrap().as_int().unwrap();
            em.emit(Record::build().field("x", x).field("sq", x * x).finish());
        })
        .build("main")
        .unwrap();
    for i in 0..200i64 {
        net.send(Record::build().field("x", i).tag("lane", i % 8).finish())
            .unwrap();
    }
    let out = net.finish();
    assert_eq!(out.len(), 200);
    for r in &out {
        let x = r.field("x").unwrap().as_int().unwrap();
        let sq = r.field("sq").unwrap().as_int().unwrap();
        assert_eq!(sq, x * x);
    }
}

#[test]
fn box_panics_surface_at_finish() {
    // A failing computational component must not hang the network or
    // disappear silently: finish() joins all threads and re-raises.
    let src = "
        box ok (x) -> (x);
        box bad (x) -> (x);
        net main = ok .. bad;
    ";
    let net = NetBuilder::from_source(src)
        .unwrap()
        .bind("ok", |r, e| e.emit(r.clone()))
        .bind("bad", |rec, _e| {
            if rec.field("x").unwrap().as_int() == Some(3) {
                panic!("box function failed on x=3");
            }
        })
        .build("main")
        .unwrap();
    for i in 0..5i64 {
        let _ = net.send(Record::build().field("x", i).finish());
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || net.finish()));
    assert!(result.is_err(), "panic in a box must propagate to finish()");
}

#[test]
fn trace_log_reconstructs_fig1_flow() {
    // End-to-end use of the tracing facility on a real network: the
    // solveOneLevel stream of stage 0 is observable in isolation.
    let log = snet_runtime::TraceLog::new();
    let net = sudoku::networks::net_with_observers(2, sudoku::networks::FIG1, vec![log.observer()])
        .unwrap();
    net.send(sudoku::boxes::puzzle_record(&sudoku::puzzles::mini4()))
        .unwrap();
    let _ = net.finish();
    let stage0 = log.for_stream("stage0/box:solveOneLevel");
    assert!(
        !stage0.is_empty(),
        "stage-0 solveOneLevel stream should be observable"
    );
    // computeOpts consumed exactly one record (the puzzle).
    let summary = log.summary();
    let compute = summary
        .iter()
        .find(|(k, _)| k.contains("box:computeOpts"))
        .map(|(_, v)| *v)
        .unwrap();
    assert_eq!(compute.0, 1);
    assert_eq!(compute.1, 1);
}

#[test]
fn values_move_by_reference_not_copy() {
    // Payloads are reference-counted: a large array passed through a
    // pipeline of identity boxes is never deep-copied.
    let big = sacarray::Array::fill([512, 512], 7i64);
    let src = "
        box id1 (blob) -> (blob);
        box id2 (blob) -> (blob);
        net main = id1 .. id2;
    ";
    let net = NetBuilder::from_source(src)
        .unwrap()
        .bind("id1", |r, e| e.emit(r.clone()))
        .bind("id2", |r, e| e.emit(r.clone()))
        .build("main")
        .unwrap();
    net.send(
        Record::build()
            .field("blob", Value::from(big.clone()))
            .finish(),
    )
    .unwrap();
    let out = net.finish();
    let arr = out[0].field("blob").unwrap().as_int_array().unwrap();
    assert!(
        arr.ptr_eq(&big),
        "array was deep-copied somewhere in the pipeline"
    );
}
