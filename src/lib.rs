//! # snet-sac — two-layer coordination of data-parallel array programs
//!
//! A Rust reproduction of Grelck, Scholz & Shafarenko,
//! *Coordinating Data Parallel SAC Programs with S-Net* (IPPS 2007).
//!
//! The paper proposes a strict separation of concerns: "a clean
//! computational language that cannot communicate and a clean
//! coordination language that cannot compute". This workspace realises
//! both layers as Rust libraries:
//!
//! | Crate | Layer | Contents |
//! |---|---|---|
//! | [`sacarray`] | computation | SaC-style n-dimensional arrays, with-loops, data-parallel pool |
//! | [`snet_types`] | coordination | records, structural subtyping, flow inheritance, signatures |
//! | [`snet_lang`] | coordination | S-Net surface syntax: parser, filters, tag expressions, pretty printer |
//! | [`snet_runtime`] | coordination | threaded stream execution, all four combinators, det variants |
//! | [`sudoku`] | application | the paper's solver and the Figure 1–3 hybrid networks |
//!
//! See `examples/` for runnable entry points and `EXPERIMENTS.md` for
//! the per-figure reproduction record.

pub use sacarray;
pub use snet_lang;
pub use snet_runtime;
pub use snet_types;
pub use sudoku;
