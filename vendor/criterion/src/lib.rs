//! Minimal in-repo stand-in for the `criterion` crate.
//!
//! Provides the API surface the bench targets use — groups, throughput
//! annotation, parameterised benches, `Bencher::iter` — backed by a
//! simple wall-clock sampler: per benchmark it warms up, then collects
//! `sample_size` timed samples of one iteration batch each and reports
//! min / median / mean per-iteration time (and element throughput when
//! annotated). Results print to stdout, one line per benchmark, and
//! also append machine-readable JSON lines to the file named by
//! `CRITERION_SHIM_JSON` (used to record committed baselines).
//!
//! No statistics beyond the basics, no HTML reports, no comparisons —
//! this is an offline build; the numbers are what matters.
//!
//! Passing `--test` (as real criterion accepts) or setting
//! `CRITERION_SHIM_SMOKE=1` switches to **smoke mode**: every bench
//! body runs exactly once, unmeasured — the CI bit-rot guard for
//! bench targets. Positional arguments (`cargo bench -- RT_box_chain`)
//! act as substring name filters, as in real criterion — only matching
//! benches run.

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark registry entry point (mirrors criterion's API).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("ungrouped");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Identifies a parameterised benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Hands the measured closure to the sampler. Each `iter` call runs
/// the body `batch` times so nanosecond-scale bodies are measured over
/// a window long enough for the wall clock to resolve.
pub struct Bencher {
    /// Total time spent inside `iter` bodies this sample.
    elapsed: Duration,
    /// Iterations executed this sample.
    iters: u64,
    /// Iterations per `iter` call, calibrated by the sampler.
    batch: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        let t0 = Instant::now();
        for _ in 0..self.batch {
            black_box(body());
        }
        self.elapsed += t0.elapsed();
        self.iters += self.batch;
    }
}

/// Smoke mode (`cargo bench -- --test`, mirroring real criterion's
/// `--test` flag, or `CRITERION_SHIM_SMOKE=1`): run every bench body
/// exactly once and report pass/fail instead of sampling. This is the
/// CI leg that keeps bench targets compiling *and running* without
/// spending minutes measuring.
fn smoke_mode() -> bool {
    static SMOKE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SMOKE.get_or_init(|| {
        std::env::args().any(|a| a == "--test")
            || std::env::var("CRITERION_SHIM_SMOKE").is_ok_and(|v| v == "1")
    })
}

/// Positional name filter (`cargo bench -- <substring>`, mirroring
/// real criterion): when any non-flag argument is present, only
/// benches whose full `group/id` name contains one of them run.
fn name_filtered_out(name: &str) -> bool {
    static FILTERS: std::sync::OnceLock<Vec<String>> = std::sync::OnceLock::new();
    let filters = FILTERS.get_or_init(|| {
        std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect()
    });
    !filters.is_empty() && !filters.iter().any(|f| name.contains(f.as_str()))
}

/// One-shot execution of a bench body (smoke mode): a single
/// iteration, no warm-up, no sampling, no JSON.
fn run_smoke<F>(name: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        batch: 1,
    };
    f(&mut b);
    println!("bench {name:<52} smoke ok ({} iter)", b.iters);
}

fn run_benchmark<F>(
    name: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    if name_filtered_out(name) {
        return;
    }
    if smoke_mode() {
        run_smoke(name, f);
        return;
    }
    // Warm-up doubles as batch calibration: grow the batch until one
    // `iter` call spans at least ~2ms, so fast bodies are resolvable.
    let mut batch: u64 = 1;
    let t0 = Instant::now();
    loop {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            batch,
        };
        f(&mut b);
        if b.iters == 0 {
            break; // the closure never called iter(); nothing to measure
        }
        if b.elapsed < Duration::from_millis(2) && batch < 1 << 24 {
            let per = (b.elapsed.as_nanos() as u64 / b.iters.max(1)).max(1);
            batch = (2_000_000 / per).clamp(batch * 2, 1 << 24);
        } else if t0.elapsed() >= warm_up {
            break;
        }
    }

    // Sampling: `sample_size` samples or until the measurement budget
    // is exhausted, whichever happens *last* for at least 3 samples.
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    let budget = Instant::now();
    for s in 0..sample_size.max(3) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            batch,
        };
        f(&mut b);
        if b.iters == 0 {
            eprintln!("bench {name}: closure never called Bencher::iter");
            return;
        }
        per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
        if s >= 2 && budget.elapsed() > measurement {
            break;
        }
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    let thr = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / median)
        }
        None => String::new(),
    };
    println!(
        "bench {name:<52} median {}  (min {}, mean {}, n={}){thr}",
        fmt_time(median),
        fmt_time(min),
        fmt_time(mean),
        per_iter.len(),
    );

    if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
        if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                file,
                "{{\"bench\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{}}}",
                name.replace('"', "'"),
                median * 1e9,
                min * 1e9,
                mean * 1e9,
                per_iter.len(),
            );
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2}ms", secs * 1e3)
    } else {
        format!("{secs:8.3}s ")
    }
}

/// Collects benchmark functions into a runner (mirrors criterion).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point: runs every group. Ignores criterion CLI flags (the
/// shim benches whatever is compiled in; `--bench` etc. are accepted
/// and discarded so `cargo bench` invocations keep working).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(50));
        g.warm_up_time(Duration::from_millis(5));
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran += 1;
        });
        g.finish();
        // Under `cargo test <filter>` the positional filter is
        // process-global and also filters bench names — the body may
        // legitimately not run at all. Under `cargo bench -- --test`
        // this very test binary runs in smoke mode (also
        // process-global), where the body executes exactly once; in a
        // plain `cargo test` run the sampler calls it at least
        // sample_size times.
        if name_filtered_out("shim_selftest/noop") {
            assert_eq!(ran, 0);
        } else if smoke_mode() {
            assert_eq!(ran, 1);
        } else {
            assert!(ran >= 3);
        }
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("seq", 8).to_string(), "seq/8");
        assert_eq!(BenchmarkId::from_parameter("det").to_string(), "det");
    }

    #[test]
    fn smoke_runner_executes_body_once() {
        let mut calls = 0u32;
        let mut iters = 0u64;
        run_smoke("smoke_selftest", &mut |b: &mut Bencher| {
            calls += 1;
            b.iter(|| std::hint::black_box(1 + 1));
            iters = b.iters;
        });
        assert_eq!(calls, 1, "smoke mode must invoke the body exactly once");
        assert_eq!(iters, 1, "smoke mode must run a single iteration");
    }
}
