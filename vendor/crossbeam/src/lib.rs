//! Minimal in-repo stand-in for `crossbeam` (channel subset).
//!
//! Implements exactly what the S-Net runtime consumes: unbounded
//! channels with disconnect-on-drop semantics, `try_recv`, blocking
//! `recv`, an iterator, and a blocking [`channel::Select`] over
//! multiple receivers. The select implementation registers a per-call
//! waker with every watched channel; senders signal registered wakers
//! on delivery and on disconnect.
//!
//! The runtime consumes every receiver from a single thread (streams
//! are point-to-point), which keeps the select fast path simple: once
//! a channel reports ready, its message cannot be stolen by another
//! consumer before `SelectedOperation::recv` completes.

pub mod channel {
    use parking_lot::{Condvar, Mutex};
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Weak};

    /// Wakes a parked `Select::select` call.
    struct Waker {
        fired: Mutex<bool>,
        cv: Condvar,
    }

    impl Waker {
        fn new() -> Arc<Waker> {
            Arc::new(Waker {
                fired: Mutex::new(false),
                cv: Condvar::new(),
            })
        }

        fn fire(&self) {
            let mut f = self.fired.lock();
            *f = true;
            self.cv.notify_all();
        }

        fn wait_and_reset(&self) {
            let mut f = self.fired.lock();
            while !*f {
                self.cv.wait(&mut f);
            }
            *f = false;
        }
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        wakers: Vec<Weak<Waker>>,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    impl<T> Chan<T> {
        /// Signals blocked receivers and any select calls watching this
        /// channel. Called with the state lock held just released —
        /// takes the lock itself to drain the waker list.
        fn signal(&self) {
            self.cv.notify_all();
            let mut st = self.state.lock();
            st.wakers.retain(|w| {
                if let Some(w) = w.upgrade() {
                    w.fire();
                    true
                } else {
                    false
                }
            });
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                wakers: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; cloneable (the runtime uses each from a single
    /// thread, but cloning is safe).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The message could not be delivered: all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The channel is empty and all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Why `try_recv` returned nothing.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            {
                let mut st = self.chan.state.lock();
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                st.queue.push_back(value);
            }
            self.chan.signal();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.state.lock().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let last = {
                let mut st = self.chan.state.lock();
                st.senders -= 1;
                st.senders == 0
            };
            if last {
                // Disconnection is an event select must observe.
                self.chan.signal();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                self.chan.cv.wait(&mut st);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock();
            if let Some(v) = st.queue.pop_front() {
                Ok(v)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Ready = a message is queued or the channel is disconnected
        /// (either way, `recv`/`try_recv` returns without blocking).
        fn ready(&self) -> bool {
            let st = self.chan.state.lock();
            !st.queue.is_empty() || st.senders == 0
        }

        fn register(&self, waker: &Arc<Waker>) {
            let mut st = self.chan.state.lock();
            // Prune wakers from past select() calls (each park uses a
            // fresh waker, so stale entries are dead Weaks). Without
            // this, a rarely-signalled channel watched by a frequently
            // parking select — e.g. a merge's control channel — would
            // accumulate one dead entry per park, unboundedly.
            st.wakers.retain(|w| w.strong_count() > 0);
            st.wakers.push(Arc::downgrade(waker));
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.state.lock().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let last = {
                let mut st = self.chan.state.lock();
                st.receivers -= 1;
                st.receivers == 0
            };
            if last {
                self.chan.cv.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Readiness view of one registered receiver, type-erased so a
    /// single `Select` can watch channels of different message types.
    trait Watch {
        fn ready(&self) -> bool;
        fn register(&self, waker: &Arc<Waker>);
    }

    impl<T> Watch for Receiver<T> {
        fn ready(&self) -> bool {
            Receiver::ready(self)
        }
        fn register(&self, waker: &Arc<Waker>) {
            Receiver::register(self, waker)
        }
    }

    /// Blocking select over receive operations (subset of
    /// crossbeam-channel's `Select`).
    pub struct Select<'a> {
        watched: Vec<&'a dyn Watch>,
        /// Rotates the readiness scan start so no branch starves.
        next_start: usize,
    }

    impl Default for Select<'_> {
        fn default() -> Self {
            Select::new()
        }
    }

    impl<'a> Select<'a> {
        pub fn new() -> Select<'a> {
            Select {
                watched: Vec::new(),
                next_start: 0,
            }
        }

        /// Adds a receive operation; returns its index.
        pub fn recv<T>(&mut self, rx: &'a Receiver<T>) -> usize {
            self.watched.push(rx);
            self.watched.len() - 1
        }

        /// Blocks until some watched operation is ready.
        pub fn select(&mut self) -> SelectedOperation {
            assert!(
                !self.watched.is_empty(),
                "select() with no registered operations would block forever"
            );
            let n = self.watched.len();
            // Fast path: something is already ready.
            loop {
                let start = self.next_start % n;
                for off in 0..n {
                    let i = (start + off) % n;
                    if self.watched[i].ready() {
                        self.next_start = i + 1;
                        return SelectedOperation { index: i };
                    }
                }
                // Park: register a fresh waker everywhere, then
                // re-check before sleeping (a signal between the scan
                // above and registration would otherwise be lost).
                let waker = Waker::new();
                for w in &self.watched {
                    w.register(&waker);
                }
                if self.watched.iter().any(|w| w.ready()) {
                    continue;
                }
                waker.wait_and_reset();
            }
        }
    }

    /// A ready operation returned by [`Select::select`].
    pub struct SelectedOperation {
        index: usize,
    }

    impl SelectedOperation {
        pub fn index(&self) -> usize {
            self.index
        }

        /// Completes the operation. The caller passes the receiver it
        /// registered under this index (crossbeam's API shape).
        pub fn recv<T>(self, rx: &Receiver<T>) -> Result<T, RecvError> {
            match rx.try_recv() {
                Ok(v) => Ok(v),
                Err(TryRecvError::Disconnected) => Err(RecvError),
                // Ready-then-empty can only mean another consumer took
                // the message. The runtime never shares receivers, but
                // fall back to a blocking recv for API fidelity.
                Err(TryRecvError::Empty) => rx.recv(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
        let (tx2, rx2) = unbounded::<i32>();
        drop(rx2);
        assert!(tx2.send(5).is_err());
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = unbounded::<i32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded::<i32>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(7).unwrap();
        assert_eq!(h.join().unwrap(), Ok(7));
    }

    #[test]
    fn select_picks_ready_branch() {
        let (t1, r1) = unbounded::<i32>();
        let (_t2, r2) = unbounded::<i32>();
        t1.send(42).unwrap();
        let mut sel = Select::new();
        let i1 = sel.recv(&r1);
        let _i2 = sel.recv(&r2);
        let op = sel.select();
        assert_eq!(op.index(), i1);
        assert_eq!(op.recv(&r1), Ok(42));
    }

    #[test]
    fn select_blocks_until_signal() {
        let (t1, r1) = unbounded::<i32>();
        let (t2, r2) = unbounded::<i32>();
        let h = std::thread::spawn(move || {
            let mut sel = Select::new();
            sel.recv(&r1);
            sel.recv(&r2);
            let op = sel.select();
            match op.index() {
                0 => op.recv(&r1),
                _ => op.recv(&r2),
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        t2.send(9).unwrap();
        assert_eq!(h.join().unwrap(), Ok(9));
        drop(t1);
    }

    #[test]
    fn select_sees_disconnect_as_ready() {
        let (t1, r1) = unbounded::<i32>();
        let h = std::thread::spawn(move || {
            let mut sel = Select::new();
            sel.recv(&r1);
            let op = sel.select();
            op.recv(&r1)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(t1);
        assert!(h.join().unwrap().is_err());
    }

    #[test]
    fn heavy_cross_thread_traffic() {
        let (tx, rx) = unbounded::<u64>();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    tx.send(t * 10_000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got.len(), 40_000);
        assert_eq!(got, (0..40_000).collect::<Vec<_>>());
    }
}
