//! Minimal in-repo stand-in for `crossbeam` (channel subset).
//!
//! **As of PR 3 the S-Net runtime no longer consumes this shim**: the
//! pollable stream surface (`poll_recv`/`poll_ready`, the waker
//! registration, the cooperative poll budget) moved into
//! `snet-runtime`'s native lock-free stream implementation
//! (`snet_runtime::stream::chan`), where ROADMAP said it belongs —
//! real crossbeam has no pollable interface, so that piece was never
//! going to swap back to the registry crate anyway. The shim is kept
//! as a workspace member because (a) it remains the mutexed reference
//! implementation the `RT_stream_send` bench compares the native
//! queue against, and (b) its concurrency tests document the channel
//! semantics the native queue preserves (FIFO, disconnect-on-drop,
//! waker dedup, budget-forced yields).
//!
//! The channel is *pollable* on top of the blocking interface:
//! [`channel::Receiver::poll_recv`] / [`channel::Receiver::poll_ready`]
//! register a [`std::task::Waker`] when the queue is empty, and senders
//! wake registered tasks on delivery and on disconnect. A per-thread
//! cooperative budget ([`channel::set_poll_budget`]) bounds how many
//! messages one task may consume before it is forced to yield.

pub mod channel {
    use parking_lot::{Condvar, Mutex};
    use std::cell::Cell;
    use std::collections::VecDeque;
    use std::fmt;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::Arc;
    use std::task::{Context, Poll};

    thread_local! {
        /// Cooperative poll budget for the current thread. `u32::MAX`
        /// means unlimited (blocking consumers, `block_on` executors).
        /// A work-stealing worker sets a finite budget before polling a
        /// task; every message the task consumes through `poll_recv` /
        /// `poll_ready` spends one unit, and at zero the channel
        /// reports `Pending` with an immediate self-wake — the task is
        /// rescheduled at the back of its worker's queue instead of
        /// monopolising it.
        static POLL_BUDGET: Cell<u32> = const { Cell::new(u32::MAX) };
    }

    /// Sets the current thread's cooperative poll budget (see the
    /// thread-local docs). Executors call this around each task poll;
    /// ordinary blocking threads never need to.
    pub fn set_poll_budget(n: u32) {
        POLL_BUDGET.with(|b| b.set(n));
    }

    /// Spends one unit of budget. Returns `false` when exhausted (the
    /// caller must yield).
    fn charge_budget() -> bool {
        POLL_BUDGET.with(|b| {
            let v = b.get();
            if v == 0 {
                false
            } else {
                if v != u32::MAX {
                    b.set(v - 1);
                }
                true
            }
        })
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// Task wakers registered by `poll_recv` / `poll_ready`;
        /// drained (and woken) on every delivery and on disconnect.
        task_wakers: Vec<std::task::Waker>,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    impl<T> Chan<T> {
        /// Signals blocked receivers and any tasks watching this
        /// channel. Called with the state lock just released — takes
        /// the lock itself to drain the waker list.
        fn signal(&self) {
            self.cv.notify_all();
            let task_wakers = {
                let mut st = self.state.lock();
                std::mem::take(&mut st.task_wakers)
            };
            // Wake outside the state lock: waking reschedules a task,
            // which takes executor queue locks of its own.
            for w in task_wakers {
                w.wake();
            }
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                task_wakers: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; cloneable (the runtime uses each from a single
    /// thread, but cloning is safe).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The message could not be delivered: all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The channel is empty and all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Why `try_recv` returned nothing.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            {
                let mut st = self.chan.state.lock();
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                st.queue.push_back(value);
            }
            self.chan.signal();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.state.lock().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let last = {
                let mut st = self.chan.state.lock();
                st.senders -= 1;
                st.senders == 0
            };
            if last {
                // Disconnection is an event watching tasks must
                // observe (end-of-stream).
                self.chan.signal();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                self.chan.cv.wait(&mut st);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock();
            if let Some(v) = st.queue.pop_front() {
                Ok(v)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Polls for a message without blocking the thread: `Ready`
        /// with the message (or `Err(RecvError)` at end-of-stream),
        /// `Pending` after registering the task's waker. The check and
        /// the registration happen under one lock, so a send between
        /// them cannot be lost. Respects the thread's cooperative
        /// budget: at zero it self-wakes and reports `Pending` even if
        /// a message is queued, forcing a fair yield.
        pub fn poll_recv(&self, cx: &mut Context<'_>) -> Poll<Result<T, RecvError>> {
            let mut st = self.chan.state.lock();
            if !st.queue.is_empty() || st.senders == 0 {
                if !charge_budget() {
                    drop(st);
                    cx.waker().wake_by_ref();
                    return Poll::Pending;
                }
                return Poll::Ready(match st.queue.pop_front() {
                    Some(v) => Ok(v),
                    None => Err(RecvError),
                });
            }
            st.task_wakers.retain(|w| !w.will_wake(cx.waker()));
            st.task_wakers.push(cx.waker().clone());
            Poll::Pending
        }

        /// Like [`Receiver::poll_recv`] but does not consume: `Ready`
        /// means the next `try_recv` returns without blocking (a
        /// message, or disconnection). Used by readiness-select loops
        /// that must decide *which* stream to consume from.
        pub fn poll_ready(&self, cx: &mut Context<'_>) -> Poll<()> {
            let mut st = self.chan.state.lock();
            if !st.queue.is_empty() || st.senders == 0 {
                if !charge_budget() {
                    drop(st);
                    cx.waker().wake_by_ref();
                    return Poll::Pending;
                }
                return Poll::Ready(());
            }
            st.task_wakers.retain(|w| !w.will_wake(cx.waker()));
            st.task_wakers.push(cx.waker().clone());
            Poll::Pending
        }

        /// Future form of [`Receiver::recv`]: resolves with the next
        /// message, or `Err(RecvError)` at end-of-stream. Awaiting on
        /// an empty channel parks the *task*, not the thread.
        pub fn recv_async(&self) -> RecvAsync<'_, T> {
            RecvAsync { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.state.lock().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let last = {
                let mut st = self.chan.state.lock();
                st.receivers -= 1;
                st.receivers == 0
            };
            if last {
                self.chan.cv.notify_all();
            }
        }
    }

    /// Future returned by [`Receiver::recv_async`].
    pub struct RecvAsync<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Future for RecvAsync<'_, T> {
        type Output = Result<T, RecvError>;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            self.rx.poll_recv(cx)
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
        let (tx2, rx2) = unbounded::<i32>();
        drop(rx2);
        assert!(tx2.send(5).is_err());
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = unbounded::<i32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded::<i32>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(7).unwrap();
        assert_eq!(h.join().unwrap(), Ok(7));
    }

    /// A counting waker for poll tests.
    struct CountWake(std::sync::atomic::AtomicUsize);

    impl std::task::Wake for CountWake {
        fn wake(self: std::sync::Arc<Self>) {
            self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    fn count_waker() -> (std::sync::Arc<CountWake>, std::task::Waker) {
        let inner = std::sync::Arc::new(CountWake(std::sync::atomic::AtomicUsize::new(0)));
        let waker = std::task::Waker::from(std::sync::Arc::clone(&inner));
        (inner, waker)
    }

    #[test]
    fn poll_recv_ready_and_pending() {
        use std::task::{Context, Poll};
        let (tx, rx) = unbounded::<i32>();
        tx.send(42).unwrap();
        let (_w, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        assert_eq!(rx.poll_recv(&mut cx), Poll::Ready(Ok(42)));
        assert_eq!(rx.poll_recv(&mut cx), Poll::Pending);
    }

    #[test]
    fn registered_waker_fires_on_send_and_disconnect() {
        use std::task::{Context, Poll};
        let (tx, rx) = unbounded::<i32>();
        let (counts, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        assert_eq!(rx.poll_recv(&mut cx), Poll::Pending);
        tx.send(9).unwrap();
        assert_eq!(counts.0.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert_eq!(rx.poll_recv(&mut cx), Poll::Ready(Ok(9)));
        // Park again; disconnection must also wake.
        assert_eq!(rx.poll_recv(&mut cx), Poll::Pending);
        drop(tx);
        assert_eq!(counts.0.load(std::sync::atomic::Ordering::SeqCst), 2);
        assert_eq!(rx.poll_recv(&mut cx), Poll::Ready(Err(RecvError)));
    }

    #[test]
    fn reregistration_does_not_accumulate_wakers() {
        use std::task::{Context, Poll};
        let (tx, rx) = unbounded::<i32>();
        let (counts, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        // Many Pending polls from the same task (will_wake dedup)...
        for _ in 0..100 {
            assert_eq!(rx.poll_ready(&mut cx), Poll::Pending);
        }
        // ...must produce exactly one wake on delivery.
        tx.send(1).unwrap();
        assert_eq!(counts.0.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert_eq!(rx.poll_ready(&mut cx), Poll::Ready(()));
        assert_eq!(rx.try_recv(), Ok(1));
    }

    #[test]
    fn exhausted_budget_forces_yield_with_self_wake() {
        use std::task::{Context, Poll};
        let (tx, rx) = unbounded::<i32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let (counts, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        set_poll_budget(1);
        assert_eq!(rx.poll_recv(&mut cx), Poll::Ready(Ok(1)));
        // Budget spent: a queued message still reports Pending, with
        // an immediate self-wake so the task is rescheduled.
        assert_eq!(rx.poll_recv(&mut cx), Poll::Pending);
        assert_eq!(counts.0.load(std::sync::atomic::Ordering::SeqCst), 1);
        set_poll_budget(u32::MAX);
        assert_eq!(rx.poll_recv(&mut cx), Poll::Ready(Ok(2)));
    }

    #[test]
    fn heavy_cross_thread_traffic() {
        let (tx, rx) = unbounded::<u64>();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    tx.send(t * 10_000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got.len(), 40_000);
        assert_eq!(got, (0..40_000).collect::<Vec<_>>());
    }
}
