//! Minimal in-repo stand-in for the `bytes` crate: just the
//! cheaply-cloneable immutable buffer the coordination layer stores in
//! `Value::Bytes`. Slicing views and buf traits are out of scope.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer. Thin (one word): the
/// length lives with the data, so `Value::Bytes` does not widen the
/// record-inline value slots (see snet-types' size budget).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    pub fn new() -> Bytes {
        Bytes(Arc::new(Vec::new()))
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::new(data.to_vec()))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter().take(32) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.0.len() > 32 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_shares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
