//! Minimal in-repo stand-in for the `rand` crate (0.8-era API subset):
//! a seedable 64-bit PRNG (`rngs::StdRng`), `SeedableRng::seed_from_u64`,
//! integer `gen_range`, and `seq::SliceRandom::shuffle`. The generator
//! is xoshiro256**, seeded via splitmix64 — deterministic across runs
//! and platforms, which is all the sudoku corpus generator needs.

/// Core RNG interface: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from `lo..hi` (half-open); integers only.
    fn gen_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random mantissa bits → uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

impl<R: RngCore> Rng for R {}

/// Integer types `gen_range` supports.
pub trait UniformInt: Copy {
    fn sample<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping is fine here:
                // the corpus generator does not need perfect uniformity
                // at astronomical spans, and spans are tiny in practice.
                let x = rng.next_u64() as u128;
                lo + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_uniform!(usize, u64, u32, i64, i32);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (subset: `shuffle`, `choose`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And actually permutes (astronomically unlikely to be id).
        assert_ne!(v, sorted);
    }
}
