//! Minimal in-repo stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the handful of external APIs it consumes. This
//! shim wraps `std::sync` primitives behind parking_lot's non-poisoning
//! interface: `lock()`/`read()`/`write()` return guards directly, and a
//! poisoned std lock (a panicking component thread) is transparently
//! recovered — parking_lot has no poisoning either, so the observable
//! semantics match.

use std::sync::{self, LockResult, PoisonError};

fn unpoison<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Mutex with parking_lot's `lock() -> Guard` signature.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// RwLock with parking_lot's `read()`/`write()` signatures.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }
}

/// Condvar with parking_lot's in-place `wait(&mut guard)` signature.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases the guard's lock, waits, and reacquires.
    /// parking_lot mutates the guard in place; emulated here by a
    /// take/replace over the std wait API.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_mut(guard, |g| unpoison(self.0.wait(g)));
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Runs a consuming `guard -> guard` function against a `&mut` slot
/// (std's `wait` consumes the guard; parking_lot's mutates in place).
fn take_mut<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    struct AbortOnPanic;
    impl Drop for AbortOnPanic {
        fn drop(&mut self) {
            // `f` panicked between the read and the write-back; the
            // slot would double-drop on unwind, so abort instead.
            // (std's Condvar::wait only panics on deadly runtime
            // errors, where aborting is the right outcome anyway.)
            std::process::abort();
        }
    }
    // SAFETY: `owned` is moved out of `slot` by a bitwise read; either
    // `f` returns and a valid guard is written back before anyone can
    // observe `slot`, or the bomb aborts the process.
    unsafe {
        let bomb = AbortOnPanic;
        let owned = std::ptr::read(slot);
        let new = f(owned);
        std::ptr::write(slot, new);
        std::mem::forget(bomb);
    }
}
