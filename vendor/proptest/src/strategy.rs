//! The strategy trait and combinators of the proptest shim.

use crate::TestRng;
use std::sync::Arc;

/// A generator of values (no shrinking in the shim).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erased, cheaply-cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies, unrolled to a bounded depth: level 0 is
    /// `self` (the leaf), each further level feeds the previous one to
    /// `recurse`. The `_desired_size` / `_expected_branch` hints of the
    /// real API are accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            cur = recurse(cur).boxed();
        }
        cur
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy; clones share the underlying generator.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Local rejection sampling; a filter that rejects everything is
        // a bug in the test, so give up loudly after a bounded number
        // of attempts.
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1000 consecutive values",
            self.whence
        );
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
