//! Minimal in-repo stand-in for the `proptest` crate.
//!
//! Supports the strategy combinators this workspace's property tests
//! use: ranges, `any`, `Just`, tuples, `prop_map` / `prop_filter` /
//! `prop_flat_map` / `prop_recursive`, `prop_oneof!`,
//! `proptest::collection::vec`, `proptest::option::of`, regex-literal
//! string strategies (character classes + bounded repetition), and the
//! `proptest!` test macro with `prop_assert*` / `prop_assume!`.
//!
//! No shrinking: a failing case panics with the generated inputs'
//! `Debug` rendering and the case's seed. Runs are seeded
//! deterministically per test (override with `PROPTEST_SEED`), so a
//! reported seed reproduces by itself.

use rand::prelude::*;
use std::ops::{Range, RangeInclusive};

pub mod strategy;
pub use strategy::{BoxedStrategy, Just, Strategy};

/// Random source handed to strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(seed))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.0.gen_range(0..n)
    }

    pub fn gen_bool_half(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Why a test case did not complete normally.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case is skipped, not failed.
    Reject(String),
    /// `prop_assert*` failed.
    Fail(String),
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (subset: case count).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Per-test driver used by the `proptest!` expansion.
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, test_name: &str) -> TestRunner {
        let base_seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse().unwrap_or(0xC0FFEE),
            // Deterministic per test name so failures reproduce without
            // any environment setup.
            Err(_) => test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
            }),
        };
        TestRunner { config, base_seed }
    }

    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::from_seed(self.base_seed ^ ((case as u64) << 32 | 0x5DEECE66D))
    }

    /// Report a failed case: panics with enough context to reproduce.
    pub fn fail(&self, test_name: &str, case: u32, inputs: &str, msg: &str) -> ! {
        panic!(
            "proptest case failed: {test_name} (case {case}, base seed {:#x})\n\
             inputs: {inputs}\n{msg}",
            self.base_seed
        );
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.usize_below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Option<T>`: `None` one time in four (mirroring
    /// proptest's default weighting toward `Some`).
    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.usize_below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool_half()
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + x) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let x = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + x) as $t
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, i64, i32, u8);

// ---------------------------------------------------------------------------
// Regex-literal string strategies (subset)
// ---------------------------------------------------------------------------

/// Pattern subset: literals, `[..]` classes with ranges, and the
/// quantifiers `{m,n}` / `{n}` / `?` / `*` / `+` (star/plus capped at
/// 8 repetitions). Enough for name-shaped patterns like
/// `[a-z][a-z0-9_]{0,6}`.
#[derive(Clone, Debug)]
enum RegexPiece {
    Class(Vec<char>),
    Lit(char),
}

#[derive(Clone, Debug)]
struct RegexPattern {
    pieces: Vec<(RegexPiece, usize, usize)>, // (piece, min, max)
}

fn parse_regex(pattern: &str) -> RegexPattern {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let piece = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in regex strategy: {pattern}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                RegexPiece::Class(set)
            }
            '\\' => {
                i += 2;
                RegexPiece::Lit(chars[i - 1])
            }
            c => {
                i += 1;
                RegexPiece::Lit(c)
            }
        };
        // Quantifier?
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed quantifier in {pattern}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    if let Some((lo, hi)) = body.split_once(',') {
                        (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        )
                    } else {
                        let n: usize = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push((piece, min, max));
    }
    RegexPattern { pieces }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pat = parse_regex(self);
        let mut out = String::new();
        for (piece, min, max) in &pat.pieces {
            let n = min + rng.usize_below(max - min + 1);
            for _ in 0..n {
                match piece {
                    RegexPiece::Lit(c) => out.push(*c),
                    RegexPiece::Class(set) => {
                        assert!(!set.is_empty(), "empty class");
                        out.push(set[rng.usize_below(set.len())]);
                    }
                }
            }
        }
        out
    }
}

pub mod prelude {
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::{
        any, Arbitrary, ProptestConfig, TestCaseError, TestCaseResult, TestRng, TestRunner,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// One alternative of `prop_oneof!`.
pub struct OneOf<T> {
    pub alts: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_below(self.alts.len());
        self.alts[i].generate(rng)
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::OneOf { alts: vec![$($crate::Strategy::boxed($alt)),+] }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// The `proptest!` test-block macro. Each generated `#[test]` runs
/// `cases` generated inputs; `prop_assume!` rejections retry with the
/// next case (up to a bounded number of extra attempts).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let runner = $crate::TestRunner::new($cfg, stringify!($name));
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = runner.cases().saturating_mul(10).max(100);
            while executed < runner.cases() && attempts < max_attempts {
                let case = attempts;
                attempts += 1;
                let mut rng = runner.rng_for(case);
                let mut rendered = String::new();
                $(
                    let value = $crate::Strategy::generate(&($strat), &mut rng);
                    {
                        use std::fmt::Write as _;
                        let _ = write!(
                            rendered, "{} = {:?}; ", stringify!($pat), &value
                        );
                    }
                    let $pat = value;
                )+
                let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => executed += 1,
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        runner.fail(stringify!($name), case, &rendered, &msg);
                    }
                }
            }
            assert!(
                executed > 0,
                "proptest {}: every case was rejected by prop_assume!",
                stringify!($name)
            );
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(1i64..=4), &mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn regex_strategy_shapes_names() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..500 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "bad len: {s}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn combinators_compose() {
        let strat = (0i64..10)
            .prop_map(|x| x * 2)
            .prop_filter("even", |x| x % 2 == 0)
            .prop_flat_map(|x| (Just(x), 0i64..5));
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let (a, b) = Strategy::generate(&strat, &mut rng);
            assert!(a % 2 == 0 && (0..5).contains(&b));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..100).contains(v));
                    1
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..100)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0i64..100, v in crate::collection::vec(0u32..9, 0..5)) {
            prop_assume!(x != 50);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
